"""SRNA1 — the paper's first hybrid algorithm (Algorithm 1).

SRNA1 tabulates the parent slice bottom-up and, whenever a matched arc pair
``((k1, x), (k2, y))`` is encountered whose child slice ``(k1+1, k2+1)`` has
not been memoized, recursively spawns and tabulates that child slice the
same way.  Key properties (asserted by tests):

* **lazy spawning** — only slices reachable in the dependency graph are ever
  tabulated (an exact tabulation, unlike SRNA2's all-pairs stage one);
* **bounded recursion** — the computation order (arcs by increasing right
  endpoint) guarantees that by the time a child slice is spawned, every
  slice *it* depends on is already memoized, so the spawn depth never
  exceeds one (Section IV-A);
* **lookup overhead** — the memo probe and conditional run inside the inner
  loop; this is the Theta(n^2 m^2) overhead SRNA2 later removes.

The optional ``memoize=False`` mode reproduces the paper's cautionary
intermediate design ("this is not dynamic programming at all"): child slices
are re-spawned at every matched arc, blowing up the work combinatorially on
nested structures.  It exists for the ablation benchmark and is guarded to
small inputs.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.core.instrument import Instrumentation
from repro.core.memo import KEY_NOT_FOUND, DenseMemoTable, SparseMemoTable
from repro.core.slices import arc_range_in
from repro.structure.arcs import Structure

__all__ = ["srna1", "SRNA1Result"]


class SRNA1Result:
    """Outcome of an SRNA1 run: the MCOS size plus the memo table."""

    __slots__ = ("score", "memo", "instrumentation")

    def __init__(
        self,
        score: int,
        memo: DenseMemoTable,
        instrumentation: Instrumentation | None,
    ):
        self.score = score
        self.memo = memo
        self.instrumentation = instrumentation

    def __int__(self) -> int:
        return self.score

    def __repr__(self) -> str:
        return f"SRNA1Result(score={self.score})"


def _tabulate(
    memo: DenseMemoTable,
    s1: Structure,
    s2: Structure,
    i1: int,
    j1: int,
    i2: int,
    j2: int,
    *,
    memoize: bool,
    instrumentation: Instrumentation | None,
) -> int:
    """Algorithm 1: tabulate ``slice_(i1,i2)``, spawning children on demand."""
    values = memo.values
    known = getattr(memo, "known", None)
    lo1, hi1 = arc_range_in(s1, i1, j1)
    lo2, hi2 = arc_range_in(s2, i2, j2)
    xs = s1.rights[lo1:hi1]
    k1s = s1.lefts[lo1:hi1]
    ys = s2.rights[lo2:hi2]
    k2s = s2.lefts[lo2:hi2]
    n_rows, n_cols = len(xs), len(ys)
    if n_rows == 0 or n_cols == 0:
        if instrumentation is not None:
            instrumentation.count_slice(0)
        return 0

    d2_cols = k2s + 1
    d1_cols = np.searchsorted(ys, k2s - 1, side="right")
    d1_rows = np.searchsorted(xs, k1s - 1, side="right")

    # Compressed slice with zero-boundary row 0 and column 0 (see
    # repro.core.slices for the layout derivation).
    rows = np.zeros((n_rows + 1, n_cols + 1), dtype=values.dtype)
    cand = np.empty(n_cols, dtype=values.dtype)
    ys_list = ys.tolist()
    k2s_list = k2s.tolist()

    def spawn(k1: int, x: int, k2: int, y: int) -> int:
        """Recursive Algorithm 1 call on the child slice under the pair."""
        ctx = (
            instrumentation.recursion()
            if instrumentation is not None
            else nullcontext()
        )
        with ctx:
            return _tabulate(
                memo, s1, s2, k1 + 1, x - 1, k2 + 1, y - 1,
                memoize=memoize, instrumentation=instrumentation,
            )

    for r in range(1, n_rows + 1):
        k1 = int(k1s[r - 1])
        x = int(xs[r - 1])
        child_row = k1 + 1
        # Algorithm 1's inner-loop memo probe: spawn any child slice not yet
        # memoized.  (`memoize=False` re-spawns unconditionally — the
        # redundant-computation variant the paper warns about.)
        if memoize and known is not None:
            row_known = known[child_row]
            for c in range(n_cols):
                k2 = k2s_list[c]
                hit = bool(row_known[k2 + 1])
                if instrumentation is not None:
                    instrumentation.count_lookup(hit=hit)
                if not hit:
                    memo.store(child_row, k2 + 1, spawn(k1, x, k2, ys_list[c]))
            d2_vals = values[child_row, d2_cols]
        elif memoize:
            # Dictionary-backed memo: the paper's literal formulation —
            # "the lookup expression returns KEY_NOT_FOUND whenever a value
            # has not been previously memoized".
            for c in range(n_cols):
                k2 = k2s_list[c]
                hit = memo.lookup(child_row, k2 + 1) is not KEY_NOT_FOUND
                if instrumentation is not None:
                    instrumentation.count_lookup(hit=hit)
                if not hit:
                    memo.store(child_row, k2 + 1, spawn(k1, x, k2, ys_list[c]))
            d2_vals = values[child_row, d2_cols]
        else:
            if s1.n_arcs > 64 or s2.n_arcs > 64:
                raise MemoryError(
                    "memoize=False re-spawns child slices combinatorially; "
                    "refusing structures with more than 64 arcs"
                )
            d2_vals = np.asarray(
                [spawn(k1, x, k2s_list[c], ys_list[c]) for c in range(n_cols)],
                dtype=values.dtype,
            )

        # With all children resolved, the row vectorizes exactly as in
        # TabulateSlice (see repro.core.slices for the derivation).
        np.take(rows[d1_rows[r - 1]], d1_cols, out=cand)
        cand += d2_vals
        cand += 1
        out = rows[r, 1:]
        np.maximum(rows[r - 1, 1:], cand, out=out)
        np.maximum.accumulate(out, out=out)

    if instrumentation is not None:
        instrumentation.count_slice(n_rows * n_cols)
    return int(rows[-1, -1])


def srna1(
    s1: Structure,
    s2: Structure,
    *,
    memoize: bool = True,
    memo_backend: str = "dense",
    instrumentation: Instrumentation | None = None,
) -> SRNA1Result:
    """Run SRNA1 on two structures; returns the score and the memo table.

    Parameters
    ----------
    memoize:
        ``True`` is Algorithm 1.  ``False`` disables the memo probe (every
        matched arc re-spawns its child slice) — combinatorial on nested
        structures, available only for small inputs, used by the ablation.
    memo_backend:
        ``"dense"`` (array + known mask, the fast default) or ``"sparse"``
        (dictionary — the paper's literal ``KEY_NOT_FOUND`` formulation;
        slower per probe, stores only spawned origins).  Used by the
        memo-backend ablation.
    """
    n, m = s1.length, s2.length
    if memo_backend == "dense":
        memo = DenseMemoTable(n, m, track_known=True)
    elif memo_backend == "sparse":
        memo = SparseMemoTable(n, m)
    else:
        raise ValueError(
            f"unknown memo_backend {memo_backend!r}; 'dense' or 'sparse'"
        )
    stage = (
        instrumentation.stage("stage_one")
        if instrumentation is not None
        else nullcontext()
    )
    with stage:
        score = _tabulate(
            memo, s1, s2, 0, n - 1, 0, m - 1,
            memoize=memoize, instrumentation=instrumentation,
        )
    memo.store(0, 0, score)
    return SRNA1Result(score, memo, instrumentation)
