"""Independent testing oracle: MCOS as ordered-forest matching.

Because unpaired positions never constrain the mapping (only arcs are
counted, and the common substructure's positions can be chosen to be exactly
the matched arcs' endpoints), the MCOS problem over the non-pseudoknot model
is equivalent to the **maximum common embedded ordered subforest** of the
two arc forests, where deleting an arc promotes its children:

    M(F1, F2) = max( M(children(t1) ++ rest1, F2),      # delete t1's root
                     M(F1, children(t2) ++ rest2),      # delete t2's root
                     1 + M(children(t1), children(t2))  # match the roots:
                       + M(rest1, rest2) )              # nested + following

with ``t1``/``t2`` the first trees of the forests.  This recursion is a
different decomposition from the paper's interval recurrence (it peels trees
from the left instead of positions from the right), so agreement between the
two is a strong correctness check — and it is exercised across randomized
structures by the test suite.

Forests are represented as nested tuples of child shapes (positions are
irrelevant to the optimum), memoized on the pair of shapes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.structure.arcs import Structure
from repro.structure.forest import Forest

__all__ = ["oracle_mcos", "forest_shape"]

# A forest shape is a tuple of tree shapes; a tree shape is the tuple of its
# children's shapes.  (The empty forest is the empty tuple.)
Shape = tuple


def forest_shape(structure: Structure) -> Shape:
    """Canonical nested-tuple shape of a structure's arc forest."""
    return Forest(structure).shape()


@lru_cache(maxsize=1_000_000)
def _match(f1: Shape, f2: Shape) -> int:
    if not f1 or not f2:
        return 0
    t1, rest1 = f1[0], f1[1:]
    t2, rest2 = f2[0], f2[1:]
    # Delete the root of the first tree of either forest (children promote).
    best = _match(t1 + rest1, f2)
    best = max(best, _match(f1, t2 + rest2))
    # Match the two roots: their subtrees must embed inside each other and
    # the remaining sibling forests after them.
    best = max(best, 1 + _match(t1, t2) + _match(rest1, rest2))
    return best


def oracle_mcos(s1: Structure, s2: Structure) -> int:
    """MCOS size by ordered-forest matching (exponential-state memo).

    Intended for *small* structures (roughly up to 15 arcs each); the memo
    key space grows quickly with forest size.
    """
    return _match(forest_shape(s1), forest_shape(s2))


def oracle_cache_clear() -> None:
    """Release the oracle's memo (tests use this between large cases)."""
    _match.cache_clear()
