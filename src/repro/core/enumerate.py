"""Enumerating all co-optimal common substructures.

One optimum is rarely unique: the recurrence's maxima tie whenever
alternative matchings reach the same count.  For analysis ("is the optimal
alignment of these families stable?") it is useful to enumerate *all*
distinct optimal matchings, not just the one a backtrace picks.

The enumeration walks the dense 4-D table (so it is limited to small
instances, like every use of :mod:`repro.core.dense`), branching into every
recurrence case that attains the cell's value and combining sub-results as
sets of matched arc pairs.  Distinct derivations of the same matching
collapse via set semantics; *limit* bounds the work per subproblem so
pathological tie structures cannot blow up.
"""

from __future__ import annotations

from typing import FrozenSet


from repro.core.dense import dense_table
from repro.structure.arcs import Arc, Structure

__all__ = ["enumerate_optima", "count_optima"]

Matching = FrozenSet[tuple[Arc, Arc]]


def enumerate_optima(
    s1: Structure,
    s2: Structure,
    limit: int = 1000,
    cell_limit: int = 20_000_000,
) -> list[Matching]:
    """All distinct optimal matchings (up to *limit*), small inputs only.

    Each matching is a frozenset of ``(arc1, arc2)`` pairs of size equal to
    the MCOS score.  Returns them sorted (for deterministic output) by
    their sorted pair lists.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    n, m = s1.length, s2.length
    empty: Matching = frozenset()
    if n == 0 or m == 0 or s1.n_arcs == 0 or s2.n_arcs == 0:
        return [empty]
    table = dense_table(s1, s2, cell_limit=cell_limit)
    partner1, partner2 = s1.partner, s2.partner
    memo: dict[tuple[int, int, int, int], frozenset[Matching]] = {}

    def value(i1: int, j1: int, i2: int, j2: int) -> int:
        if j1 < i1 or j2 < i2:
            return 0
        return int(table[i1, j1, i2, j2])

    def solve(i1: int, j1: int, i2: int, j2: int) -> frozenset[Matching]:
        if j1 < i1 or j2 < i2:
            return frozenset([empty])
        target = value(i1, j1, i2, j2)
        if target == 0:
            return frozenset([empty])
        key = (i1, j1, i2, j2)
        cached = memo.get(key)
        if cached is not None:
            return cached
        found: set[Matching] = set()
        # Static cases: the same optimum without position j1 (or j2).
        if value(i1, j1 - 1, i2, j2) == target:
            found |= solve(i1, j1 - 1, i2, j2)
        if len(found) < limit and value(i1, j1, i2, j2 - 1) == target:
            found |= solve(i1, j1, i2, j2 - 1)
        # Dynamic case: matched arcs closing at (j1, j2).
        k1 = int(partner1[j1])
        k2 = int(partner2[j2])
        if (
            len(found) < limit
            and k1 != -1
            and k2 != -1
            and i1 <= k1 < j1
            and i2 <= k2 < j2
        ):
            d1 = value(i1, k1 - 1, i2, k2 - 1)
            d2 = value(k1 + 1, j1 - 1, k2 + 1, j2 - 1)
            if 1 + d1 + d2 == target:
                pair = (Arc(k1, j1), Arc(k2, j2))
                before = solve(i1, k1 - 1, i2, k2 - 1)
                under = solve(k1 + 1, j1 - 1, k2 + 1, j2 - 1)
                for left in before:
                    for right in under:
                        found.add(left | right | {pair})
                        if len(found) >= limit:
                            break
                    if len(found) >= limit:
                        break
        if len(found) > limit:
            found = set(sorted(found, key=_matching_key)[:limit])
        result = frozenset(found)
        memo[key] = result
        return result

    optima = solve(0, n - 1, 0, m - 1)
    ordered = sorted(optima, key=_matching_key)
    if len(ordered) > limit:
        ordered = ordered[:limit]
    return ordered


def _matching_key(matching: Matching):
    return sorted(
        (tuple(arc1), tuple(arc2)) for arc1, arc2 in matching
    )


def count_optima(s1: Structure, s2: Structure, limit: int = 1000) -> int:
    """Number of distinct optimal matchings (saturates at *limit*)."""
    return len(enumerate_optima(s1, s2, limit=limit))
