"""The dynamic programming recurrence of paper Figure 2.

For intervals ``[i1, j1]`` of structure ``S1`` and ``[i2, j2]`` of ``S2``,
``F(i1, j1, i2, j2)`` is the maximum number of arcs in a common ordered
substructure confined to those intervals:

* **static dependencies** (always inspected)::

      s1 = F(i1, j1 - 1, i2, j2)
      s2 = F(i1, j1, i2, j2 - 1)

* **dynamic dependencies** (inspected only when arcs ``(k1, j1) in S1`` and
  ``(k2, j2) in S2`` close at the interval ends, with ``i1 <= k1 < j1`` and
  ``i2 <= k2 < j2`` — the *data-driven* cases)::

      d1 = F(i1, k1 - 1, i2, k2 - 1)      # structure before the arcs
      d2 = F(k1 + 1, j1 - 1, k2 + 1, j2 - 1)  # structure under the arcs
      F  = max(s1, s2, 1 + d1 + d2)

Empty intervals (``j < i``) have value 0.  Because the non-pseudoknot model
forbids shared endpoints, ``k1`` is uniquely determined by ``j1`` (it is
``j1``'s bonded partner), and likewise ``k2`` by ``j2`` — this module exposes
:func:`matched_arc` for that test.

This module holds only the *semantics*; the different evaluation strategies
live in :mod:`repro.core.dense` (bottom-up, overtabulating),
:mod:`repro.core.topdown` (memoized recursion, exact tabulation) and
:mod:`repro.core.slices`/:mod:`repro.core.srna2` (the paper's hybrid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.structure.arcs import Structure

__all__ = ["Subproblem", "matched_arc", "dependencies", "upper_bound"]


@dataclass(frozen=True, order=True)
class Subproblem:
    """One node of the dependency graph: the tuple ``(i1, j1, i2, j2)``."""

    i1: int
    j1: int
    i2: int
    j2: int

    @property
    def empty(self) -> bool:
        """True when either interval is empty, i.e. ``F == 0``."""
        return self.j1 < self.i1 or self.j2 < self.i2

    def slice_origin(self) -> tuple[int, int]:
        """The ``(i1, i2)`` pair identifying this subproblem's slice."""
        return (self.i1, self.i2)


def matched_arc(
    s1: Structure, s2: Structure, sub: Subproblem
) -> tuple[int, int] | None:
    """Return ``(k1, k2)`` if arcs close at both interval ends, else ``None``.

    This is the recurrence's dynamic-dependency guard: there must be arcs
    ``(k1, j1) in S1`` and ``(k2, j2) in S2`` whose left endpoints fall inside
    the intervals.
    """
    if sub.empty:
        return None
    k1 = s1.partner_of(sub.j1) if sub.j1 < s1.length else -1
    k2 = s2.partner_of(sub.j2) if sub.j2 < s2.length else -1
    if k1 == -1 or k2 == -1:
        return None
    if not (sub.i1 <= k1 < sub.j1 and sub.i2 <= k2 < sub.j2):
        return None
    return k1, k2


def dependencies(
    s1: Structure, s2: Structure, sub: Subproblem
) -> dict[str, Subproblem]:
    """The direct dependencies of *sub*, labelled as in the paper.

    Always contains ``s1`` and ``s2`` (static); contains ``d1`` and ``d2``
    exactly when :func:`matched_arc` fires.  Used by the dependency-graph
    analysis (paper Figure 3) and by tests that validate the tabulation
    orders of SRNA1/SRNA2 against the true dependency structure.
    """
    deps = {
        "s1": Subproblem(sub.i1, sub.j1 - 1, sub.i2, sub.j2),
        "s2": Subproblem(sub.i1, sub.j1, sub.i2, sub.j2 - 1),
    }
    match = matched_arc(s1, s2, sub)
    if match is not None:
        k1, k2 = match
        deps["d1"] = Subproblem(sub.i1, k1 - 1, sub.i2, k2 - 1)
        deps["d2"] = Subproblem(k1 + 1, sub.j1 - 1, k2 + 1, sub.j2 - 1)
    return deps


def upper_bound(s1: Structure, s2: Structure) -> int:
    """A trivial upper bound on the MCOS size: ``min(|S1|, |S2|)``."""
    return min(s1.n_arcs, s2.n_arcs)
