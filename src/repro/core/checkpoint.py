"""Checkpoint/restart for long stage-one runs.

Table I's n = 1600 column runs for many minutes (hours at n = 3200 in
Python), and cluster schedulers kill jobs; a production comparison tool
needs to resume.  SRNA2's structure makes checkpointing almost free: stage
one's only cross-iteration state is the memo table ``M`` and the index of
the next outer arc — after arc ``a`` completes, every entry ``M`` will ever
need from arcs ``<= a`` is final (the same ordering argument that makes the
algorithm correct makes its prefix a valid checkpoint).

Checkpoints are ``.npz`` files carrying the memo array, the resume index
and a structure-pair digest so a checkpoint cannot silently resume against
different inputs.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

import numpy as np

from repro.core.memo import DenseMemoTable
from repro.core.slices import ENGINES
from repro.errors import ReproError
from repro.structure.arcs import Structure

__all__ = ["CheckpointError", "Checkpoint", "srna2_checkpointed"]

_FORMAT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint file is unusable for the requested resume."""


def _pair_digest(s1: Structure, s2: Structure) -> str:
    hasher = hashlib.sha256()
    for structure in (s1, s2):
        hasher.update(str(structure.length).encode())
        hasher.update(structure.lefts.tobytes())
        hasher.update(structure.rights.tobytes())
    return hasher.hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """In-memory view of a saved stage-one prefix."""

    next_arc: int
    memo_values: np.ndarray
    digest: str

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the checkpoint (write-then-rename)."""
        path = os.fspath(path)
        tmp_path = path + ".tmp"
        np.savez_compressed(
            tmp_path if tmp_path.endswith(".npz") else tmp_path,
            version=np.int64(_FORMAT_VERSION),
            next_arc=np.int64(self.next_arc),
            memo=self.memo_values,
            digest=np.frombuffer(self.digest.encode(), dtype=np.uint8),
        )
        # np.savez appends .npz to names lacking it.
        written = tmp_path if tmp_path.endswith(".npz") else tmp_path + ".npz"
        os.replace(written, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Checkpoint":
        path = os.fspath(path)
        try:
            with np.load(path) as payload:
                version = int(payload["version"])
                if version != _FORMAT_VERSION:
                    raise CheckpointError(
                        f"checkpoint format v{version} is not supported "
                        f"(expected v{_FORMAT_VERSION})"
                    )
                return cls(
                    next_arc=int(payload["next_arc"]),
                    memo_values=payload["memo"].copy(),
                    digest=payload["digest"].tobytes().decode(),
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc


def srna2_checkpointed(
    s1: Structure,
    s2: Structure,
    path: str | os.PathLike,
    *,
    every: int = 64,
    engine: str = "vectorized",
    interrupt_after: int | None = None,
):
    """SRNA2 with periodic stage-one checkpoints at *path*.

    If *path* exists, the run resumes from it (after verifying the inputs
    match via digest).  A checkpoint is written every *every* outer arcs
    and once more when stage one completes; the file is removed after a
    successful finish.

    *interrupt_after* aborts the run with :class:`InterruptedError` after
    that many outer arcs have been processed **in this invocation** — the
    hook the failure-injection tests use to simulate preemption.

    Returns the same result object as :func:`repro.core.srna2.srna2`.
    """
    from repro.core.srna2 import SRNA2Result

    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    try:
        tabulate = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown slice engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None

    digest = _pair_digest(s1, s2)
    n, m = s1.length, s2.length
    memo = DenseMemoTable(n, m)
    start_arc = 0
    path = os.fspath(path)
    if os.path.exists(path):
        saved = Checkpoint.load(path)
        if saved.digest != digest:
            raise CheckpointError(
                "checkpoint was written for a different structure pair; "
                "refusing to resume"
            )
        if saved.memo_values.shape != memo.values.shape:
            raise CheckpointError(
                f"checkpoint memo shape {saved.memo_values.shape} does not "
                f"match {memo.values.shape}"
            )
        memo.values[...] = saved.memo_values
        start_arc = saved.next_arc

    values = memo.values
    inner1 = s1.inner_ranges
    inner2 = s2.inner_ranges
    lefts1 = s1.lefts.tolist()
    rights1 = s1.rights.tolist()
    lefts2 = s2.lefts.tolist()
    rights2 = s2.rights.tolist()

    processed = 0
    for a in range(start_arc, s1.n_arcs):
        if interrupt_after is not None and processed >= interrupt_after:
            Checkpoint(a, values, digest).save(path)
            raise InterruptedError(
                f"interrupted after {processed} outer arcs (checkpoint at "
                f"arc {a} saved)"
            )
        i1, j1 = lefts1[a], rights1[a]
        r1 = (int(inner1[a, 0]), int(inner1[a, 1]))
        row = values[i1 + 1]
        for b in range(s2.n_arcs):
            i2, j2 = lefts2[b], rights2[b]
            row[i2 + 1] = tabulate(
                values, s1, s2, i1 + 1, j1 - 1, i2 + 1, j2 - 1,
                ranges=(r1, (int(inner2[b, 0]), int(inner2[b, 1]))),
            )
        processed += 1
        if (a + 1) % every == 0:
            Checkpoint(a + 1, values, digest).save(path)

    score = int(
        tabulate(
            values, s1, s2, 0, n - 1, 0, m - 1,
            ranges=((0, s1.n_arcs), (0, s2.n_arcs)),
        )
    )
    memo.store(0, 0, score)
    if os.path.exists(path):
        os.remove(path)
    return SRNA2Result(score, memo, None)
