"""Top-down memoized evaluation of the recurrence (the classic baseline).

This is the approach the paper contrasts against (Section II, Figure 3): a
depth-first traversal of the dependency graph with a memoization table keyed
by the full subproblem tuple ``(i1, j1, i2, j2)``.  It performs an *exact
tabulation* (only subproblems that contribute to the result are visited) but
pays dictionary lookups and traversal overhead per subproblem, and its memo
table can grow toward the full Theta(n^2 m^2) — the memory blow-up that
motivates the paper's slice-based algorithms.

Implemented with an explicit work stack rather than Python recursion so deep
instances do not hit the interpreter's recursion limit.
"""

from __future__ import annotations

from repro.core.instrument import Instrumentation
from repro.structure.arcs import Structure

__all__ = ["topdown_mcos", "reachable_subproblems"]


def topdown_mcos(
    s1: Structure,
    s2: Structure,
    *,
    instrumentation: Instrumentation | None = None,
    max_subproblems: int | None = 50_000_000,
) -> int:
    """MCOS size via memoized top-down evaluation.

    Parameters
    ----------
    max_subproblems:
        Guard against accidental huge runs — the memo table may approach
        ``n^2 m^2 / 4`` entries on dense structures.  ``None`` disables it.
    """
    n, m = s1.length, s2.length
    if n == 0 or m == 0 or s1.n_arcs == 0 or s2.n_arcs == 0:
        return 0
    partner1 = s1.partner
    partner2 = s2.partner
    memo: dict[tuple[int, int, int, int], int] = {}

    root = (0, n - 1, 0, m - 1)
    # Work stack of subproblems; a subproblem is (re)expanded until all of
    # its dependencies are memoized, then folded.
    stack = [root]
    while stack:
        sub = stack[-1]
        if sub in memo:
            stack.pop()
            continue
        i1, j1, i2, j2 = sub
        if j1 < i1 or j2 < i2:
            memo[sub] = 0
            stack.pop()
            continue

        deps = [(i1, j1 - 1, i2, j2), (i1, j1, i2, j2 - 1)]
        k1 = int(partner1[j1])
        k2 = int(partner2[j2])
        matched = (
            k1 != -1 and k2 != -1 and i1 <= k1 < j1 and i2 <= k2 < j2
        )
        if matched:
            deps.append((i1, k1 - 1, i2, k2 - 1))
            deps.append((k1 + 1, j1 - 1, k2 + 1, j2 - 1))

        missing = [d for d in deps if d not in memo and not (d[1] < d[0] or d[3] < d[2])]
        if instrumentation is not None:
            for d in deps:
                instrumentation.count_lookup(hit=d in memo)
        if missing:
            stack.extend(missing)
            continue

        def val(d: tuple[int, int, int, int]) -> int:
            if d[1] < d[0] or d[3] < d[2]:
                return 0
            return memo[d]

        best = max(val(deps[0]), val(deps[1]))
        if matched:
            best = max(best, 1 + val(deps[2]) + val(deps[3]))
        memo[sub] = best
        stack.pop()
        if max_subproblems is not None and len(memo) > max_subproblems:
            raise MemoryError(
                f"top-down memo table exceeded {max_subproblems} entries; "
                "use SRNA2 for instances of this size"
            )
    if instrumentation is not None:
        instrumentation.cells_tabulated += len(memo)
    return memo[root]


def reachable_subproblems(s1: Structure, s2: Structure) -> set[tuple[int, int, int, int]]:
    """The exact set of subproblems a top-down traversal visits.

    This is the paper's "exact tabulation" — the dependency graph of Figure 3
    restricted to nodes reachable from the root.  Used by tests to confirm
    that SRNA1 visits no more slices than are reachable.
    """
    n, m = s1.length, s2.length
    if n == 0 or m == 0:
        return set()
    partner1 = s1.partner
    partner2 = s2.partner
    seen: set[tuple[int, int, int, int]] = set()
    stack = [(0, n - 1, 0, m - 1)]
    while stack:
        sub = stack.pop()
        if sub in seen:
            continue
        i1, j1, i2, j2 = sub
        if j1 < i1 or j2 < i2:
            continue
        seen.add(sub)
        stack.append((i1, j1 - 1, i2, j2))
        stack.append((i1, j1, i2, j2 - 1))
        k1 = int(partner1[j1])
        k2 = int(partner2[j2])
        if k1 != -1 and k2 != -1 and i1 <= k1 < j1 and i2 <= k2 < j2:
            stack.append((i1, k1 - 1, i2, k2 - 1))
            stack.append((k1 + 1, j1 - 1, k2 + 1, j2 - 1))
    return seen
