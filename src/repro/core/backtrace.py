"""Recovering an optimal common substructure from SRNA2's tables.

The paper's space reduction keeps only the final value of each child slice,
which (as Section IV-A notes) forfeits the details of *how* each slice's
optimum was reached "unless we are interested in backtracing the subproblem
that spawned the child slice".  This module supplies that backtrace without
giving up the Theta(nm) resident footprint: slices are **re-tabulated on
demand** during the walk, one at a time, each discarded before the next is
opened.

The result is the list of matched arc pairs — a certificate that can be (and
in tests, is) independently verified to be a valid common ordered
substructure of the claimed size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.memo import DenseMemoTable
from repro.core.slices import SliceTable, tabulate_slice_vectorized
from repro.errors import BacktraceError
from repro.structure.arcs import Arc, Structure

__all__ = [
    "MatchedPair",
    "backtrace",
    "backtrace_weighted",
    "verify_matching",
]


@dataclass(frozen=True)
class MatchedPair:
    """One matched arc pair in the common substructure."""

    arc1: Arc
    arc2: Arc


def _close(a: float, b: float) -> bool:
    """Value equality that tolerates float accumulation in weighted runs."""
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _weighted_keep_table(
    memo: DenseMemoTable,
    weights: np.ndarray,
    s1: Structure,
    s2: Structure,
    i1: int,
    j1: int,
    i2: int,
    j2: int,
) -> SliceTable:
    """Weighted twin of the slice tabulation, keeping the full table."""
    from repro.core.slices import arc_range_in

    r1 = arc_range_in(s1, i1, j1)
    r2 = arc_range_in(s2, i2, j2)
    lo1, hi1 = r1
    lo2, hi2 = r2
    xs = s1.rights[lo1:hi1]
    k1s = s1.lefts[lo1:hi1]
    ys = s2.rights[lo2:hi2]
    k2s = s2.lefts[lo2:hi2]
    n_rows, n_cols = len(xs), len(ys)
    rows = np.zeros((n_rows + 1, n_cols + 1), dtype=np.float64)
    if n_rows and n_cols:
        d1_cols = np.searchsorted(ys, k2s - 1, side="right")
        d1_rows = np.searchsorted(xs, k1s - 1, side="right")
        wd2 = (
            weights[lo1:hi1, lo2:hi2]
            + memo.values[np.ix_(k1s + 1, k2s + 1)]
        )
        cand = np.empty(n_cols, dtype=np.float64)
        for r in range(1, n_rows + 1):
            np.take(rows[d1_rows[r - 1]], d1_cols, out=cand)
            cand += wd2[r - 1]
            out = rows[r, 1:]
            np.maximum(rows[r - 1, 1:], cand, out=out)
            np.maximum.accumulate(out, out=out)
    return SliceTable(i1, j1, i2, j2, xs, k1s, ys, k2s, rows)


def _trace_slice(
    memo: DenseMemoTable,
    s1: Structure,
    s2: Structure,
    i1: int,
    j1: int,
    i2: int,
    j2: int,
    out: list[MatchedPair],
    weights: np.ndarray | None = None,
) -> None:
    """Re-tabulate one slice and walk it backwards, recursing into the child
    slice of every matched pair on the optimal path."""
    if weights is None:
        table: SliceTable = tabulate_slice_vectorized(
            memo.values, s1, s2, i1, j1, i2, j2, keep_table=True
        )
    else:
        table = _weighted_keep_table(memo, weights, s1, s2, i1, j1, i2, j2)
    rows = table.rows
    n_rows = len(table.xs)
    n_cols = len(table.ys)
    if n_rows == 0 or n_cols == 0:
        return
    # d1 references depend only on the arc endpoints, so both the stored
    # indices and the value grid are hoisted out of the walk: one
    # vectorized searchsorted per axis, one broadcast values_at read.
    d1_rows = np.searchsorted(table.xs, table.k1s - 1, side="right")
    d1_cols = np.searchsorted(table.ys, table.k2s - 1, side="right")
    d1_grid = table.values_at(
        table.k1s[:, None] - 1, table.k2s[None, :] - 1
    )
    # Stack of cells still to be explained within this slice.  Cells are
    # (stored row, stored column) indices; index 0 on either axis is the
    # zero boundary.
    stack: list[tuple[int, int]] = [(n_rows, n_cols)]
    while stack:
        r, c = stack.pop()
        value = rows[r, c]
        if _close(value, 0.0) or r == 0 or c == 0:
            continue
        # s1 case: same value one endpoint row up.
        if _close(rows[r - 1, c], value):
            stack.append((r - 1, c))
            continue
        # s2 case: same value one endpoint column left.
        if _close(rows[r, c - 1], value):
            stack.append((r, c - 1))
            continue
        # Must be a match at this cell: arcs (k1, x) and (k2, y).
        k1 = int(table.k1s[r - 1])
        x = int(table.xs[r - 1])
        k2 = int(table.k2s[c - 1])
        y = int(table.ys[c - 1])
        d1_row = int(d1_rows[r - 1])
        d1_col = int(d1_cols[c - 1])
        d1 = d1_grid[r - 1, c - 1]
        d2 = memo.values[k1 + 1, k2 + 1]
        if weights is None:
            bonus = 1
        else:
            lo1 = int(np.searchsorted(s1.rights, x, side="left"))
            lo2 = int(np.searchsorted(s2.rights, y, side="left"))
            bonus = weights[lo1, lo2]
        if not _close(value, bonus + d1 + d2):
            raise BacktraceError(
                f"cell ({r}, {c}) of slice ({i1},{j1})x({i2},{j2}) holds "
                f"{value}, but no recurrence case attains it "
                f"(s1/s2 fail, match gives {bonus + d1 + d2})"
            )
        out.append(MatchedPair(Arc(k1, x), Arc(k2, y)))
        if not _close(d2, 0.0):
            _trace_slice(
                memo, s1, s2, k1 + 1, x - 1, k2 + 1, y - 1, out, weights
            )
        if not _close(d1, 0.0):
            stack.append((d1_row, d1_col))
    return


def backtrace(
    memo: DenseMemoTable, s1: Structure, s2: Structure
) -> list[MatchedPair]:
    """Matched arc pairs of an optimal common substructure.

    *memo* must be the table produced by a completed SRNA1/SRNA2/PRNA run on
    ``(s1, s2)``.  Pairs are returned in no particular order; their count
    equals the MCOS size stored at ``M[0, 0]``.
    """
    out: list[MatchedPair] = []
    _trace_slice(memo, s1, s2, 0, s1.length - 1, 0, s2.length - 1, out)
    expected = int(memo.values[0, 0])
    if len(out) != expected:
        raise BacktraceError(
            f"backtrace found {len(out)} matched pairs but the table "
            f"reports an optimum of {expected}"
        )
    return out


def backtrace_weighted(
    memo: DenseMemoTable,
    s1: Structure,
    s2: Structure,
    weights: np.ndarray,
) -> list[MatchedPair]:
    """Matched arc pairs of a maximum-*weight* common substructure.

    *memo* must come from a completed :func:`repro.core.weighted
    .weighted_mcos` run with the same *weights*.  The returned pairs' total
    weight equals the stored optimum (pairs whose subtrees cancel to zero
    weight may be omitted — the certificate is weight-optimal either way).
    """
    weights = np.asarray(weights, dtype=np.float64)
    out: list[MatchedPair] = []
    _trace_slice(
        memo, s1, s2, 0, s1.length - 1, 0, s2.length - 1, out, weights
    )
    expected = float(memo.values[0, 0])
    arc_index1 = {arc: k for k, arc in enumerate(s1.arcs)}
    arc_index2 = {arc: k for k, arc in enumerate(s2.arcs)}
    total = sum(
        float(weights[arc_index1[pair.arc1], arc_index2[pair.arc2]])
        for pair in out
    )
    if not _close(total, expected):
        raise BacktraceError(
            f"weighted backtrace recovered total weight {total} but the "
            f"table reports an optimum of {expected}"
        )
    return out


def verify_matching(
    s1: Structure, s2: Structure, pairs: list[MatchedPair]
) -> bool:
    """Check that *pairs* forms a valid common ordered substructure.

    Requirements (Section III-A): the matched arcs of each side are distinct,
    belong to their structures, and the pairing preserves the relative
    arrangement — for any two pairs, the two ``S1`` arcs relate (nested /
    sequential, in the same orientation) exactly as the two ``S2`` arcs do.

    Raises :class:`BacktraceError` describing the first violation; returns
    ``True`` otherwise.
    """
    arcset1 = set(s1.arcs)
    arcset2 = set(s2.arcs)
    seen1: set[Arc] = set()
    seen2: set[Arc] = set()
    for pair in pairs:
        if pair.arc1 not in arcset1:
            raise BacktraceError(f"{pair.arc1} is not an arc of S1")
        if pair.arc2 not in arcset2:
            raise BacktraceError(f"{pair.arc2} is not an arc of S2")
        if pair.arc1 in seen1:
            raise BacktraceError(f"{pair.arc1} matched twice")
        if pair.arc2 in seen2:
            raise BacktraceError(f"{pair.arc2} matched twice")
        seen1.add(pair.arc1)
        seen2.add(pair.arc2)

    def relation(a: Arc, b: Arc) -> str:
        if a.right < b.left:
            return "before"
        if b.right < a.left:
            return "after"
        if a.left < b.left and b.right < a.right:
            return "around"
        if b.left < a.left and a.right < b.right:
            return "inside"
        return "crossing"

    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            rel1 = relation(pairs[i].arc1, pairs[j].arc1)
            rel2 = relation(pairs[i].arc2, pairs[j].arc2)
            if rel1 != rel2:
                raise BacktraceError(
                    f"pairs {i} and {j} disagree: S1 arcs are {rel1}, "
                    f"S2 arcs are {rel2}"
                )
    return True
