"""Work estimation for PRNA's column distribution (paper Figure 7).

Stage one tabulates, for every arc pair ``(p, q)``, a child slice whose
cost is proportional to the number of subproblems inside it —
``inside_count1[p] * inside_count2[q]`` arc-pair cells — plus a fixed
per-slice overhead (interval setup, the memo store).  Because the cell
term is an outer product, the *relative* work of the columns (arcs of
``S2``) is identical from row to row, which is the property that lets the
paper fix a single static column partition for the whole of stage one.
"""

from __future__ import annotations

import numpy as np

from repro.structure.arcs import Structure

__all__ = ["column_weights", "stage_one_work", "row_work"]

#: Calibratable fixed cost of one slice, in cell-equivalents.  Measured on
#: this substrate a slice call costs about as much as tabulating ~40 cells;
#: the exact value only matters for structures dominated by tiny slices.
SLICE_OVERHEAD_CELLS = 40.0


def column_weights(
    s1: Structure,
    s2: Structure,
    overhead: float = SLICE_OVERHEAD_CELLS,
) -> np.ndarray:
    """Per-column stage-one work: one weight per arc of ``s2``.

    ``weight[q] = sum_p (inside1[p] * inside2[q] + overhead)``
    ``          = total_inside1 * inside2[q] + |S1| * overhead``.
    """
    total_inside1 = float(s1.inside_count.sum())
    return (
        s2.inside_count.astype(np.float64) * total_inside1
        + s1.n_arcs * overhead
    )


def row_work(
    s1: Structure,
    s2: Structure,
    overhead: float = SLICE_OVERHEAD_CELLS,
) -> np.ndarray:
    """Per-row stage-one work: one weight per arc of ``s1`` (all columns)."""
    total_inside2 = float(s2.inside_count.sum())
    return (
        s1.inside_count.astype(np.float64) * total_inside2
        + s2.n_arcs * overhead
    )


def stage_one_work(
    s1: Structure,
    s2: Structure,
    overhead: float = SLICE_OVERHEAD_CELLS,
) -> float:
    """Total stage-one work in cell-equivalents (all arc pairs)."""
    cells = float(s1.inside_count.sum()) * float(s2.inside_count.sum())
    return cells + overhead * s1.n_arcs * s2.n_arcs
