"""Column partitioners: who owns which arcs of ``S2`` during stage one.

The paper's choice is the greedy (Graham) partitioner; ``block`` and
``cyclic`` are the classic alternatives the load-balancing ablation
contrasts it with.  A :class:`Partition` is validated on construction —
every column owned exactly once — which is also how the failure-injection
tests confirm that a broken partitioner cannot slip through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.scheduling.graham import lpt_schedule, makespan

__all__ = [
    "Partition",
    "block_partition",
    "cyclic_partition",
    "greedy_partition",
    "PARTITIONERS",
]


@dataclass(frozen=True)
class Partition:
    """An assignment of ``n_tasks`` columns to ``n_ranks`` owners."""

    n_ranks: int
    owner: tuple[int, ...]  # owner[task] = rank
    weights: tuple[float, ...] = field(repr=False, default=())

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise SchedulingError(f"n_ranks must be >= 1, got {self.n_ranks}")
        for task, rank in enumerate(self.owner):
            if not 0 <= rank < self.n_ranks:
                raise SchedulingError(
                    f"task {task} assigned to invalid rank {rank} "
                    f"(world size {self.n_ranks})"
                )
        if self.weights and len(self.weights) != len(self.owner):
            raise SchedulingError(
                f"{len(self.weights)} weights for {len(self.owner)} tasks"
            )

    @property
    def n_tasks(self) -> int:
        return len(self.owner)

    def tasks_of(self, rank: int) -> list[int]:
        """Column indices owned by *rank*, in increasing order.

        Increasing column index is increasing arc right endpoint — the
        traversal order stage one requires.
        """
        if not 0 <= rank < self.n_ranks:
            raise SchedulingError(f"rank {rank} outside [0, {self.n_ranks})")
        return [task for task, owner in enumerate(self.owner) if owner == rank]

    def loads(self) -> np.ndarray:
        """Total weight per rank (unit weights if none were recorded)."""
        weights = self.weights or tuple([1.0] * self.n_tasks)
        loads = np.zeros(self.n_ranks, dtype=np.float64)
        for task, rank in enumerate(self.owner):
            loads[rank] += weights[task]
        return loads

    def imbalance(self) -> float:
        """``max_load / mean_load`` (1.0 is perfect; 0 tasks gives 1.0)."""
        loads = self.loads()
        mean = loads.mean()
        if mean == 0:
            return 1.0
        return float(loads.max() / mean)


def block_partition(weights: Sequence[float], n_ranks: int) -> Partition:
    """Contiguous blocks of (nearly) equal *count* — weight-oblivious."""
    n_tasks = len(weights)
    owner = [0] * n_tasks
    base, extra = divmod(n_tasks, n_ranks)
    task = 0
    for rank in range(n_ranks):
        count = base + (1 if rank < extra else 0)
        for _ in range(count):
            owner[task] = rank
            task += 1
    return Partition(n_ranks, tuple(owner), tuple(float(w) for w in weights))


def cyclic_partition(weights: Sequence[float], n_ranks: int) -> Partition:
    """Round-robin: task ``t`` goes to rank ``t mod P``."""
    owner = tuple(task % n_ranks for task in range(len(weights)))
    return Partition(n_ranks, owner, tuple(float(w) for w in weights))


def greedy_partition(weights: Sequence[float], n_ranks: int) -> Partition:
    """The paper's choice: Graham/LPT greedy balancing on the weights."""
    owner = tuple(lpt_schedule(weights, n_ranks))
    return Partition(n_ranks, owner, tuple(float(w) for w in weights))


PARTITIONERS: dict[str, Callable[[Sequence[float], int], Partition]] = {
    "block": block_partition,
    "cyclic": cyclic_partition,
    "greedy": greedy_partition,
}


def partition_quality(partition: Partition) -> dict[str, float]:
    """Summary metrics used by the load-balancing ablation."""
    weights = partition.weights or tuple([1.0] * partition.n_tasks)
    return {
        "makespan": makespan(weights, partition.owner),
        "imbalance": partition.imbalance(),
        "total": float(sum(weights)),
    }
