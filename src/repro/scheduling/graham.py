"""Graham's greedy multiprocessor scheduling (list scheduling).

R. L. Graham, "Bounds for multiprocessing timing anomalies", SIAM J. Applied
Mathematics 17, 1969 — the paper's reference [4] for PRNA's static load
balancing.  Greedy list scheduling assigns each task to the currently
least-loaded machine and guarantees a makespan within ``2 - 1/P`` of
optimal; sorting tasks by decreasing weight first (LPT) tightens the bound
to ``4/3 - 1/(3P)``.

A binary heap keeps each assignment O(log P), so scheduling all ``|S2|``
columns costs O(T log T + T log P).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.errors import SchedulingError

__all__ = ["graham_schedule", "lpt_schedule", "makespan"]


def graham_schedule(
    weights: Sequence[float] | np.ndarray, n_machines: int
) -> list[int]:
    """Assign tasks to machines greedily in the given order.

    Returns ``assignment`` with ``assignment[t]`` the machine of task ``t``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if n_machines < 1:
        raise SchedulingError(f"need at least one machine, got {n_machines}")
    if (weights < 0).any():
        raise SchedulingError("task weights must be non-negative")
    assignment = [0] * len(weights)
    heap = [(0.0, machine) for machine in range(n_machines)]
    heapq.heapify(heap)
    for task, weight in enumerate(weights):
        load, machine = heapq.heappop(heap)
        assignment[task] = machine
        heapq.heappush(heap, (load + float(weight), machine))
    return assignment


def lpt_schedule(
    weights: Sequence[float] | np.ndarray, n_machines: int
) -> list[int]:
    """Longest-Processing-Time-first: sort by decreasing weight, then greedy.

    This is the variant PRNA's preprocessing uses by default — the work
    estimates are known up front, so sorting is free relative to stage one.
    """
    weights = np.asarray(weights, dtype=np.float64)
    order = np.argsort(-weights, kind="stable")
    assignment = [0] * len(weights)
    greedy = graham_schedule(weights[order], n_machines)
    for position, task in enumerate(order):
        assignment[int(task)] = greedy[position]
    return assignment


def makespan(
    weights: Sequence[float] | np.ndarray, assignment: Sequence[int]
) -> float:
    """Maximum machine load under *assignment*."""
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(assignment):
        raise SchedulingError(
            f"{len(weights)} weights but {len(assignment)} assignments"
        )
    loads: dict[int, float] = {}
    for task, machine in enumerate(assignment):
        loads[machine] = loads.get(machine, 0.0) + float(weights[task])
    return max(loads.values(), default=0.0)
