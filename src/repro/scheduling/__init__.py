"""Static load balancing for PRNA's stage one.

The paper distributes "the columns of the parent slice that correspond with
matched arcs" using "a greedy approximation algorithm [Graham 1969]"
(Section V-A).  This subpackage provides that algorithm
(:mod:`repro.scheduling.graham`), alternative partitioners for the ablation
(:mod:`repro.scheduling.partition`), and the per-column work estimates they
consume (:mod:`repro.scheduling.workload`).
"""

from repro.scheduling.graham import graham_schedule, lpt_schedule, makespan
from repro.scheduling.partition import (
    Partition,
    block_partition,
    cyclic_partition,
    greedy_partition,
    PARTITIONERS,
)
from repro.scheduling.workload import column_weights, stage_one_work

__all__ = [
    "graham_schedule",
    "lpt_schedule",
    "makespan",
    "Partition",
    "block_partition",
    "cyclic_partition",
    "greedy_partition",
    "PARTITIONERS",
    "column_weights",
    "stage_one_work",
]
