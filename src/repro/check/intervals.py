"""Integer interval lattice for the numeric dataflow verifier.

The dataflow pass (:mod:`repro.check.dataflow`) interprets kernel code
over abstract values; this module supplies the **value-range** half of
the abstraction: closed integer intervals ``[lo, hi]`` with ``None`` as
the infinity on either side.  The transfer functions are deliberately
*optimistic about nothing*: every operation widens to top unless both
operands' bounds are known, so a flagged overflow is a **proof** (given
the registry's declared input bounds), never a heuristic.

Two pieces of domain knowledge live here next to the lattice:

* :data:`DTYPE_RANGES` — the representable range of every numpy integer
  dtype the kernels use, the right-hand side of the DTYPE1xx rules;
* :func:`lift_bound` — the worst-case value produced by the batched
  engine's segmented prefix-max lift (``seg_id * stride`` with
  ``stride = max_value * n_rows + 1``; see
  :func:`repro.core.slices._segmented_tabulate`) under declared input
  bounds.  This is the number the DTYPE101 message carries: it exceeds
  every sub-64-bit integer's range while staying below ``2**62``, which
  is exactly why the lift upcasts to int64 and refuses to run otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Interval",
    "TOP",
    "const",
    "bounded",
    "DTYPE_RANGES",
    "NARROW_INT_DTYPES",
    "dtype_range",
    "lift_bound",
]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds are infinities."""

    lo: int | None
    hi: int | None

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def join(self, other: "Interval") -> "Interval":
        """Lattice join: the smallest interval containing both."""
        lo = None if self.lo is None or other.lo is None else min(
            self.lo, other.lo
        )
        hi = None if self.hi is None or other.hi is None else max(
            self.hi, other.hi
        )
        return Interval(lo, hi)

    # -- arithmetic transfer functions ---------------------------------
    def add(self, other: "Interval") -> "Interval":
        """``self + other`` (unknown bounds stay unknown)."""
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def sub(self, other: "Interval") -> "Interval":
        """``self - other``."""
        return Interval(_sub(self.lo, other.hi), _sub(self.hi, other.lo))

    def mul(self, other: "Interval") -> "Interval":
        """``self * other`` via the four corners; top if any is unknown."""
        corners = [
            a * b
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
            if a is not None and b is not None
        ]
        if len(corners) != 4:
            return TOP
        return Interval(min(corners), max(corners))

    def lshift(self, other: "Interval") -> "Interval":
        """``self << other`` for non-negative known shifts; top otherwise."""
        if (
            self.lo is None
            or self.hi is None
            or other.lo is None
            or other.hi is None
            or other.lo < 0
        ):
            return TOP
        corners = [
            a << s for a in (self.lo, self.hi) for s in (other.lo, other.hi)
        ]
        return Interval(min(corners), max(corners))

    def neg(self) -> "Interval":
        """``-self``."""
        return Interval(_neg(self.hi), _neg(self.lo))

    # -- comparisons the rules use -------------------------------------
    def proven_exceeds(self, other: "Interval") -> bool:
        """Whether some value of ``self`` provably falls outside *other*.

        True only when a bound of ``self`` is **known** and lies outside
        *other* — an unknown bound never proves anything.
        """
        if other.hi is not None and self.hi is not None and self.hi > other.hi:
            return True
        if other.lo is not None and self.lo is not None and self.lo < other.lo:
            return True
        return False


TOP = Interval(None, None)


def const(value: int) -> Interval:
    """The singleton interval ``[value, value]``."""
    return Interval(value, value)


def bounded(lo: int | None, hi: int | None) -> Interval:
    """The interval ``[lo, hi]`` (``None`` = unbounded on that side)."""
    return Interval(lo, hi)


def _add(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a + b


def _sub(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a - b


def _neg(a: int | None) -> int | None:
    return None if a is None else -a


#: Representable ranges of the numpy integer dtypes the kernels touch.
DTYPE_RANGES: dict[str, Interval] = {
    "int8": Interval(-(1 << 7), (1 << 7) - 1),
    "int16": Interval(-(1 << 15), (1 << 15) - 1),
    "int32": Interval(-(1 << 31), (1 << 31) - 1),
    "int64": Interval(-(1 << 63), (1 << 63) - 1),
    "uint8": Interval(0, (1 << 8) - 1),
    "uint16": Interval(0, (1 << 16) - 1),
    "uint32": Interval(0, (1 << 32) - 1),
    "uint64": Interval(0, (1 << 64) - 1),
}

#: Integer dtypes narrower than the lift-safe int64.
NARROW_INT_DTYPES = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)


def dtype_range(name: str) -> Interval | None:
    """The representable interval of dtype *name*, or None if unknown."""
    return DTYPE_RANGES.get(name)


def lift_bound(bounds: Mapping[str, int]) -> int:
    """Worst-case lifted value of the segmented prefix-max under *bounds*.

    Mirrors :func:`repro.core.slices._segmented_tabulate`: memo terms are
    at most ``max_value``, ``d2p1`` adds one, the stride must exceed any
    attainable slice value (``n_rows`` gains of at most ``vmax`` each, so
    ``stride = vmax * n_rows + 1``), and the last segment is lifted by
    ``(n_seg - 1) * stride`` and then accumulates up to ``stride - 1`` of
    slice value on top.  ``n_rows`` and ``n_seg`` are both bounded by the
    arc count.
    """
    vmax = bounds["max_value"] + 1
    n_rows = bounds["max_arcs"]
    n_seg = bounds["max_arcs"]
    stride = vmax * n_rows + 1
    return n_seg * stride - 1
