"""SARIF 2.1.0 export for static findings.

The Static Analysis Results Interchange Format is what GitHub code
scanning ingests; emitting it turns every ``repro.check`` finding into a
pull-request annotation with no extra glue.  Only the small, stable core
of the format is produced: one ``run`` with a ``tool.driver`` carrying
the rule catalog, and one ``result`` per finding with a
``physicalLocation``.  Columns are converted from the analyzer's 0-based
offsets to SARIF's 1-based columns.
"""

from __future__ import annotations

from repro.check.findings import RULES, Finding

__all__ = ["to_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-check"

#: Rule families that indicate a proven protocol or numeric violation
#: rather than a lexical smell; surfaced as SARIF ``error`` severity.
#: DTYPE/SHAPE/COST findings are interval/shape *proofs* (or, for the
#: lexical DTYPE101 form, a proof modulo aliasing), so they rank with
#: the protocol verdicts.
_ERROR_PREFIXES = ("SPMD1", "SPMD2", "SCHED", "DTYPE", "SHAPE", "COST")


def _severity(rule: str) -> str:
    if rule.startswith(_ERROR_PREFIXES):
        return "error"
    return "warning"


def to_sarif(findings: list[Finding], *, tool_version: str = "0") -> dict:
    """A SARIF 2.1.0 log object for *findings*."""
    used_rules = sorted({finding.rule for finding in findings} | set(RULES))
    rule_index = {rule: idx for idx, rule in enumerate(used_rules)}
    driver = {
        "name": TOOL_NAME,
        "informationUri": "https://example.invalid/repro-check",
        "version": str(tool_version),
        "rules": [
            {
                "id": rule,
                "shortDescription": {
                    "text": RULES.get(rule, "unknown rule")
                },
                "defaultConfiguration": {"level": _severity(rule)},
            }
            for rule in used_rules
        ],
    }
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _severity(finding.rule),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
