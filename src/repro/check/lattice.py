"""Abstract domains for the interprocedural SPMD protocol verifier.

The protocol pass (:mod:`repro.check.protocol`) interprets each SPMD entry
point once per *abstract rank* and extracts a **communication schedule** —
an ordered tree of abstract events.  This module owns the two lattices the
interpreter computes over, plus the event/tree vocabulary itself:

* the **rank domain**: a run is summarized by two abstract ranks,
  :data:`RANK_ZERO` (``rank == 0``, the root of every star pattern in the
  tree) and :data:`RANK_OTHER` (a symbolic non-zero rank).  Branch
  conditions are *decided* against an abstract rank where possible
  (``rank == 0``, ``rank != 0``, truthiness, simple and/or/not
  combinations); anything else involving the rank is an undecidable
  rank-dependent branch and both arms are kept;
* the **value lattice** for collective/send/recv metadata (tags, reduce
  ops, roots): ``("const", v)`` for a folded constant, ``("expr", text)``
  for a stable symbolic expression over resolvable names, and
  ``("top", None)`` for anything data-dependent.  This is the same
  three-point lattice SPMD002's tag folder uses, widened across modules
  by the project constant environment.

Schedules are *trees*, not flat sequences: a uniform (rank-independent)
conditional contributes one :class:`Branch` node to every rank's schedule,
so legitimately configuration-dependent code compares equal across ranks
without path enumeration, while a rank-*decidable* conditional selects the
taken arm per abstract rank and a rank-*undecidable* one keeps both arms
flagged ``rank_dep`` for the in-tree divergence check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "AbstractRank",
    "RANK_ZERO",
    "RANK_OTHER",
    "ABSTRACT_RANKS",
    "Value",
    "CONST",
    "EXPR",
    "TOP",
    "const",
    "top",
    "CollectiveEvent",
    "SendEvent",
    "RecvEvent",
    "PublishEvent",
    "AwaitEvent",
    "Branch",
    "Loop",
    "Schedule",
    "decide_condition",
    "collective_view",
    "iter_events",
    "first_difference",
]


# ----------------------------------------------------------------------
# Rank domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AbstractRank:
    """One abstract rank of the symbolic SPMD world.

    ``value`` is the concrete rank when known (``0`` for the root),
    ``None`` for the symbolic "some non-zero rank".  The world size is
    symbolic and assumed ``>= 2`` (a single-rank world cannot deadlock).
    """

    name: str
    value: int | None

    def describe(self) -> str:
        """Human-readable name used in divergence diagnostics."""
        if self.value is not None:
            return f"rank {self.value}"
        return "a non-zero rank"


RANK_ZERO = AbstractRank("R0", 0)
RANK_OTHER = AbstractRank("Rk", None)

#: The abstract world every entry point is interpreted against.
ABSTRACT_RANKS = (RANK_ZERO, RANK_OTHER)


# ----------------------------------------------------------------------
# Value lattice (tags, ops, roots, shapes)
# ----------------------------------------------------------------------
CONST = "const"
EXPR = "expr"
TOP = "top"

#: ``("const", value)`` | ``("expr", text)`` | ``("top", None)``.
Value = tuple


def const(value) -> Value:
    """A known-constant lattice value."""
    return (CONST, value)


def top() -> Value:
    """The unknown (dynamic) lattice value."""
    return (TOP, None)


def render_value(value: Value) -> str:
    kind, payload = value
    if kind == CONST:
        return repr(payload)
    if kind == EXPR:
        return str(payload)
    return "<dynamic>"


# ----------------------------------------------------------------------
# Schedule events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Located:
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class CollectiveEvent(_Located):
    """One collective call site: ``barrier``/``bcast``/``Allreduce``/..."""

    name: str
    #: Resolved metadata lattice values (``op``, ``root`` where present).
    meta: tuple = ()

    def describe(self) -> str:
        """Human-readable event label for diagnostics."""
        return f"collective '{self.name}'"


@dataclass(frozen=True)
class SendEvent(_Located):
    tag: Value = (TOP, None)
    peer: Value = (TOP, None)

    def describe(self) -> str:
        """Human-readable event label for diagnostics."""
        return f"send(tag={render_value(self.tag)})"


@dataclass(frozen=True)
class RecvEvent(_Located):
    tag: Value = (TOP, None)
    peer: Value = (TOP, None)

    def describe(self) -> str:
        """Human-readable event label for diagnostics."""
        return f"recv(tag={render_value(self.tag)})"


@dataclass(frozen=True)
class PublishEvent(_Located):
    """A non-blocking coalesced cell publication (``comm.Publish``).

    Publications are one-sided and asynchronous: they never participate
    in :func:`collective_view` (a rank-asymmetric publication pattern is
    legitimate — producers publish, consumers await) and never join the
    SPMD2xx tag pool (the publication transport owns a reserved tag).
    Their legality is judged against the recurrence's dependency
    structure by the SCHED0xx rules instead.
    """

    key: Value = (TOP, None)
    dest: Value = (TOP, None)

    def describe(self) -> str:
        """Human-readable event label for diagnostics."""
        return f"publish(key={render_value(self.key)})"


@dataclass(frozen=True)
class AwaitEvent(_Located):
    """A blocking claim of published cells (``comm.Await``).

    Like :class:`PublishEvent` this is excluded from the collective
    skeleton: only the ranks whose wait-set is non-empty block, by
    design.  Deadlock freedom comes from the substrate's
    flush-before-block rule plus the SCHED0xx publication-order proof,
    not from cross-rank schedule equality.
    """

    keys: Value = (TOP, None)
    source: Value = (TOP, None)

    def describe(self) -> str:
        """Human-readable event label for diagnostics."""
        return f"await(keys={render_value(self.keys)})"


@dataclass(frozen=True)
class Branch(_Located):
    """A conditional kept in the schedule (uniform or rank-undecidable)."""

    cond: str = ""
    rank_dep: bool = False
    then: "Schedule" = field(default_factory=lambda: Schedule())
    orelse: "Schedule" = field(default_factory=lambda: Schedule())


@dataclass(frozen=True)
class Loop(_Located):
    """A loop; ``rank_dep`` when the trip count may differ across ranks."""

    key: str = ""
    rank_dep: bool = False
    body: "Schedule" = field(default_factory=lambda: Schedule())


Node = Union[
    CollectiveEvent, SendEvent, RecvEvent, PublishEvent, AwaitEvent,
    Branch, Loop,
]


@dataclass
class Schedule:
    """An ordered tree of abstract communication events."""

    items: list = field(default_factory=list)

    def append(self, node: Node) -> None:
        """Append one event/branch/loop node in program order."""
        self.items.append(node)

    def extend(self, other: "Schedule") -> None:
        """Splice *other*'s nodes in place (callee inlining)."""
        self.items.extend(other.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __len__(self) -> int:
        return len(self.items)


# ----------------------------------------------------------------------
# Condition decision against an abstract rank
# ----------------------------------------------------------------------
def _is_rankish(node: ast.expr, tainted: frozenset[str]) -> bool:
    """Whether *node* denotes the rank itself (``rank``, ``comm.rank``)."""
    from repro.check.rules import _is_rank_name  # shared heuristic

    if isinstance(node, ast.Name):
        return _is_rank_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_rank_name(node.attr)
    return False


def _const_of(node: ast.expr, env: dict[str, int]) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name) and node.id in env:
        return env[node.id]
    if isinstance(node, ast.Attribute) and node.attr in env:
        return env[node.attr]
    return None


def _compare(op: ast.cmpop, left: int, right: int) -> bool | None:
    if isinstance(op, ast.Eq):
        return left == right
    if isinstance(op, ast.NotEq):
        return left != right
    if isinstance(op, ast.Lt):
        return left < right
    if isinstance(op, ast.LtE):
        return left <= right
    if isinstance(op, ast.Gt):
        return left > right
    if isinstance(op, ast.GtE):
        return left >= right
    return None


def decide_condition(
    test: ast.expr,
    rank: AbstractRank,
    env: dict[str, int] | None = None,
    tainted: frozenset[str] = frozenset(),
) -> bool | None:
    """Evaluate *test* against *rank*; ``None`` when undecidable.

    Decides ``rank <cmp> <const>`` (both orientations), bare-rank
    truthiness, ``not``, and ``and``/``or`` over decidable pieces.  For
    :data:`RANK_OTHER` only comparisons against ``0`` decide (the symbol
    is "some rank that is not 0" — nothing else is known about it).
    """
    env = env or {}
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = decide_condition(test.operand, rank, env, tainted)
        return None if inner is None else not inner
    if isinstance(test, ast.BoolOp):
        parts = [
            decide_condition(value, rank, env, tainted)
            for value in test.values
        ]
        if isinstance(test.op, ast.And):
            if any(part is False for part in parts):
                return False
            if all(part is True for part in parts):
                return True
            return None
        if any(part is True for part in parts):
            return True
        if all(part is False for part in parts):
            return False
        return None
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        # Normalize to rank-on-the-left.
        if _is_rankish(right, tainted) and not _is_rankish(left, tainted):
            flip = {
                ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                ast.LtE: ast.GtE, ast.GtE: ast.LtE,
            }
            left, right = right, left
            op = flip.get(type(op), type(op))()
        if _is_rankish(left, tainted):
            bound = _const_of(right, env)
            if bound is None:
                return None
            if rank.value is not None:
                return _compare(op, rank.value, bound)
            # Symbolic non-zero rank: only its non-zero-ness is known.
            if bound == 0:
                if isinstance(op, ast.Eq):
                    return False
                if isinstance(op, ast.NotEq):
                    return True
                if isinstance(op, (ast.Gt, ast.GtE)):
                    return True
                if isinstance(op, ast.Lt):
                    return False
            if bound == 1 and isinstance(op, ast.GtE):
                return True
            if bound == 1 and isinstance(op, ast.Lt):
                return False
            return None
        return None
    # Bare truthiness of the rank: `if rank:` / `if comm.rank:`.
    if _is_rankish(test, tainted):
        if rank.value is not None:
            return bool(rank.value)
        return True
    return None


# ----------------------------------------------------------------------
# Normalization and comparison
# ----------------------------------------------------------------------
def collective_view(schedule: Schedule) -> Schedule:
    """*schedule* reduced to collectives: p2p dropped, empty nodes pruned.

    Star-patterned send/recv sequences legitimately differ per rank (rank
    0 receives from everyone, peers send to rank 0), so divergence is
    judged on the collective skeleton only; point-to-point safety is the
    tag-matching rules' job (SPMD002/SPMD2xx).
    """
    out = Schedule()
    for node in schedule.items:
        if isinstance(node, CollectiveEvent):
            out.append(node)
        elif isinstance(node, Branch):
            then = collective_view(node.then)
            orelse = collective_view(node.orelse)
            if then or orelse:
                out.append(
                    Branch(
                        node.path, node.line, node.col,
                        cond=node.cond, rank_dep=node.rank_dep,
                        then=then, orelse=orelse,
                    )
                )
        elif isinstance(node, Loop):
            body = collective_view(node.body)
            if body:
                out.append(
                    Loop(
                        node.path, node.line, node.col,
                        key=node.key, rank_dep=node.rank_dep, body=body,
                    )
                )
    return out


def iter_events(schedule: Schedule) -> Iterator[Node]:
    """Every event in *schedule*, depth-first, arms and bodies included."""
    for node in schedule.items:
        yield node
        if isinstance(node, Branch):
            yield from iter_events(node.then)
            yield from iter_events(node.orelse)
        elif isinstance(node, Loop):
            yield from iter_events(node.body)


def _schedules_equal(a: Schedule, b: Schedule) -> bool:
    return first_difference(a, b) is None


def first_difference(a: Schedule, b: Schedule):
    """The first structural difference between two schedules, or ``None``.

    Returns ``(node_a, node_b, why)`` where either node may be ``None``
    (one side ran out of events).  Collective events differ when their
    names differ (``why="collective"``) or their names match but resolved
    metadata does not (``why="meta"``); branch/loop nodes compare arm by
    arm and body by body.
    """
    for node_a, node_b in zip(a.items, b.items):
        kind_a, kind_b = type(node_a), type(node_b)
        if kind_a is not kind_b:
            return node_a, node_b, "kind"
        if isinstance(node_a, CollectiveEvent):
            if node_a.name != node_b.name:
                return node_a, node_b, "collective"
            if node_a.meta != node_b.meta:
                return node_a, node_b, "meta"
        elif isinstance(node_a, Branch):
            for arm_a, arm_b in (
                (node_a.then, node_b.then),
                (node_a.orelse, node_b.orelse),
            ):
                diff = first_difference(arm_a, arm_b)
                if diff is not None:
                    return diff
        elif isinstance(node_a, Loop):
            if node_a.key != node_b.key:
                return node_a, node_b, "loop"
            diff = first_difference(node_a.body, node_b.body)
            if diff is not None:
                return diff
    if len(a.items) != len(b.items):
        longer = a.items if len(a.items) > len(b.items) else b.items
        extra = longer[min(len(a.items), len(b.items))]
        if len(a.items) > len(b.items):
            return extra, None, "extra"
        return None, extra, "extra"
    return None
