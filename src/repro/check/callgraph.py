"""Whole-program indexing for the protocol verifier.

:class:`ProjectIndex` parses every file once and builds the three
interprocedural facts the rest of :mod:`repro.check` consumes:

* a **function index** (module-level functions *and* methods, keyed by
  qualified name) with per-module import maps, so a call can be resolved
  across modules — ``helper(x)`` through ``from pkg.mod import helper``,
  ``mod.helper(x)`` through ``import pkg.mod as mod``, and
  ``self.method(...)`` within a class;
* a **project constant environment**: every module's ``NAME = <int>``
  bindings (including ``AugAssign`` updates and tuple unpacking, which
  the original SPMD002 folder silently widened to wildcard), importable
  across modules so a tag constant defined in one file resolves in
  another;
* the set of **shm-factory functions** — functions whose return value is
  (transitively) tainted by ``allocate_shared``/``DenseMemoTable.wrap`` —
  computed to a fixpoint so SPMD003 tracks handles returned through
  helpers.

The index is deliberately name-based (no type inference): calls on
unknown receivers stay unresolved, which the protocol interpreter treats
as communication-free.  That is the right default for this codebase,
where the communicator itself is the only object whose methods *are* the
protocol — and those are matched by method name, not by receiver.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectIndex", "module_name_of"]


def module_name_of(path: str) -> str:
    """Dotted module name of *path*, relative to the nearest source root.

    ``src/repro/parallel/prna.py -> repro.parallel.prna``; for paths with
    no ``src`` component (test snippets, temp dirs) the full path minus
    extension is used.  Lookups fall back to dotted-suffix matching, so
    precision of the root hardly matters.
    """
    norm = path.replace(os.sep, "/")
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [part for part in norm.split("/") if part not in ("", ".", "..")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "module.func" or "module.Class.method"
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    #: local name -> dotted target ("helper" -> "pkg.mod.helper" for
    #: ``from pkg.mod import helper``; "mod" -> "pkg.mod" for
    #: ``import pkg.mod as mod``).
    imports: dict[str, str] = field(default_factory=dict)
    #: integer constants assigned at module or class level.
    constants: dict[str, int] = field(default_factory=dict)


def _scan_constants(body: list[ast.stmt], env: dict[str, int]) -> None:
    """Fold module/class-level integer constant bindings into *env*.

    Handles plain assignment, annotated assignment, tuple unpacking of
    constant tuples, and ``AugAssign`` over an already-known constant.
    """
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
            if (
                len(targets) == 1
                and isinstance(targets[0], (ast.Tuple, ast.List))
                and isinstance(value, (ast.Tuple, ast.List))
                and len(targets[0].elts) == len(value.elts)
            ):
                for target, elt in zip(targets[0].elts, value.elts):
                    if (
                        isinstance(target, ast.Name)
                        and isinstance(elt, ast.Constant)
                        and isinstance(elt.value, int)
                        and not isinstance(elt.value, bool)
                    ):
                        env[target.id] = elt.value
                continue
            if isinstance(value, ast.Constant) and isinstance(
                value.value, int
            ) and not isinstance(value.value, bool):
                for target in targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = value.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)
            ):
                env[stmt.target.id] = stmt.value.value
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id in env:
                base = env[stmt.target.id]
                delta = (
                    stmt.value.value
                    if isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                    else None
                )
                if delta is None:
                    del env[stmt.target.id]  # widened: no longer constant
                    continue
                folded = _fold_aug(stmt.op, base, delta)
                if folded is None:
                    del env[stmt.target.id]
                else:
                    env[stmt.target.id] = folded
        elif isinstance(stmt, ast.ClassDef):
            _scan_constants(stmt.body, env)


def _fold_aug(op: ast.operator, base: int, delta: int) -> int | None:
    if isinstance(op, ast.Add):
        return base + delta
    if isinstance(op, ast.Sub):
        return base - delta
    if isinstance(op, ast.Mult):
        return base * delta
    if isinstance(op, ast.BitOr):
        return base | delta
    if isinstance(op, ast.LShift):
        return base << delta
    return None


def _scan_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{stmt.module}.{alias.name}"
                )
    return imports


class ProjectIndex:
    """Cross-module function/constant/taint index over parsed files."""

    def __init__(self, modules: dict[str, ast.Module]):
        """*modules* maps file path -> parsed tree."""
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: dotted module name -> ModuleInfo (plus every dotted suffix).
        self._by_name: dict[str, ModuleInfo] = {}
        for path, tree in modules.items():
            name = module_name_of(path)
            info = ModuleInfo(name, path, tree, _scan_imports(tree))
            _scan_constants(tree.body, info.constants)
            self.modules[path] = info
            for suffix in _dotted_suffixes(name):
                self._by_name.setdefault(suffix, info)
            self._index_functions(info)
        self.shm_factories: set[str] = self._compute_shm_factories()

    # ------------------------------------------------------------------
    def _index_functions(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module, sub, stmt.name)

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        parts = [module.name] if module.name else []
        if class_name:
            parts.append(class_name)
        parts.append(node.name)
        info = FunctionInfo(
            ".".join(parts), module.name, module.path, node, class_name
        )
        self.functions[info.qualname] = info

    # ------------------------------------------------------------------
    def module_named(self, dotted: str) -> ModuleInfo | None:
        """Look up a module by dotted name, falling back to suffixes."""
        if dotted in self._by_name:
            return self._by_name[dotted]
        for suffix in _dotted_suffixes(dotted):
            if suffix in self._by_name:
                return self._by_name[suffix]
        return None

    def entry_points(self) -> list[FunctionInfo]:
        """Module-level functions taking a parameter named ``comm``.

        The SPMD convention throughout the tree: a rank body receives the
        abstract communicator as a parameter literally named ``comm``.
        """
        return [
            info
            for info in self.functions.values()
            if info.class_name is None and "comm" in info.params
        ]

    # ------------------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, module: ModuleInfo, class_name: str | None = None
    ) -> FunctionInfo | None:
        """The :class:`FunctionInfo` *call* targets, or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            owner = func.value
            # self.method() / cls.method() within a known class.
            if (
                isinstance(owner, ast.Name)
                and owner.id in ("self", "cls")
                and class_name is not None
            ):
                qual = f"{module.name}.{class_name}.{func.attr}"
                if qual in self.functions:
                    return self.functions[qual]
                return None
            # mod.helper() through an import, or Class.method().
            if isinstance(owner, ast.Name):
                target = module.imports.get(owner.id, owner.id)
                resolved = self._resolve_dotted(f"{target}.{func.attr}")
                if resolved is not None:
                    return resolved
                # Class imported into this module: Class.method.
                qual = f"{module.name}.{owner.id}.{func.attr}"
                return self.functions.get(qual)
        return None

    def _resolve_name(self, name: str, module: ModuleInfo) -> FunctionInfo | None:
        qual = f"{module.name}.{name}" if module.name else name
        if qual in self.functions:
            return self.functions[qual]
        if name in module.imports:
            return self._resolve_dotted(module.imports[name])
        return None

    def _resolve_dotted(self, dotted: str) -> FunctionInfo | None:
        if dotted in self.functions:
            return self.functions[dotted]
        # from pkg.mod import helper -> "pkg.mod.helper"; the defining
        # module may be indexed under a path-derived suffix.
        if "." in dotted:
            mod_part, leaf = dotted.rsplit(".", 1)
            target = self.module_named(mod_part)
            if target is not None:
                qual = f"{target.name}.{leaf}" if target.name else leaf
                return self.functions.get(qual)
        return None

    # ------------------------------------------------------------------
    def constant_env(self, module: ModuleInfo) -> dict[str, int]:
        """*module*'s constants plus constants imported from the project."""
        env = dict(module.constants)
        for local, dotted in module.imports.items():
            if local in env:
                continue
            if "." not in dotted:
                continue
            mod_part, leaf = dotted.rsplit(".", 1)
            target = self.module_named(mod_part)
            if target is not None and leaf in target.constants:
                env[local] = target.constants[leaf]
        return env

    # ------------------------------------------------------------------
    def _compute_shm_factories(self) -> set[str]:
        """Functions returning shm-tainted handles, to a fixpoint.

        Seeds on functions whose ``return`` expression calls
        ``allocate_shared`` or ``DenseMemoTable.wrap`` directly, then
        propagates through functions that return a call to (or a name
        assigned from) an already-known factory.
        """
        factories: set[str] = set()
        names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.qualname in factories:
                    continue
                if self._returns_shm(info, names):
                    factories.add(info.qualname)
                    names.add(info.node.name)
                    changed = True
        return names

    def _returns_shm(self, info: FunctionInfo, factory_names: set[str]) -> bool:
        from repro.check.rules import _has_shm_source

        local_shm: set[str] = set()

        def tainted(expr: ast.expr) -> bool:
            if _has_shm_source(expr):
                return True
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    callee = sub.func
                    callee_name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else None
                    )
                    if callee_name in factory_names:
                        return True
                if isinstance(sub, ast.Name) and sub.id in local_shm:
                    return True
            return False

        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Assign) and tainted(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        local_shm.add(target.id)
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if tainted(stmt.value):
                    return True
        return False


def _dotted_suffixes(name: str) -> list[str]:
    """``a.b.c -> ["a.b.c", "b.c", "c"]`` (longest first)."""
    parts = name.split(".")
    return [".".join(parts[i:]) for i in range(len(parts))]
