"""Interprocedural, rank-symbolic SPMD protocol verification.

This is the static counterpart of the runtime sanitizer: where
``SanitizedCommunicator`` catches SAN101/SAN103 divergence as it happens,
this pass *proves or refutes* schedule agreement before the code runs.

For every SPMD entry point (module-level functions taking a ``comm``
parameter, the shm ``Allreduce`` protocol in :mod:`repro.mpi.process`,
and any executor entry declared in :mod:`repro.runtime.registry`) the
analyzer interprets the body once per abstract rank (``rank == 0`` and a
symbolic non-zero rank), inlining calls through the
:class:`~repro.check.callgraph.ProjectIndex`, and extracts a
**communication schedule** — an ordered tree of collective/send/recv/
publish/await events with tag/op/root lattice values
(:mod:`repro.check.lattice`).  ``Publish``/``Await`` — the dataflow
executor's one-sided substrate — appear in the tree but are excluded
from both the collective skeleton and the tag pool: producer/consumer
asymmetry is the dependency-driven schedule working as designed, and its
legality is what the SCHED0xx rules prove instead.

Rule families over the schedules:

* **SPMD1xx — collective agreement** (static SAN101/SAN103):
  ``SPMD101`` when two feasible rank paths reach different collective
  sequences, ``SPMD102`` when an aligned collective's op/root metadata is
  rank-dependent, ``SPMD103`` when a collective sits inside a loop whose
  trip count is rank-dependent (each rank spins it a different number of
  times).
* **SPMD2xx — interprocedural tag matching** (static SAN104):
  ``SPMD201``/``SPMD202`` for constant send/recv tags with no matching
  peer anywhere in the analyzed program, with cross-module constant
  resolution.  One unresolvable receive tag anywhere makes the pool
  wildcard (conservative, same stance as SPMD002's module rule).
* **SCHED0xx — dependency-schedule legality**: each executor schedule
  declared in the registry is checked against the recurrence's actual
  ``d1``/``d2`` dependency structure (via
  :func:`repro.analysis.depgraph.arc_dependency_pairs`) on a set of
  nested sample structures: ``SCHED001`` when the declared publication
  order publishes a dependency after its reader, ``SCHED002`` when a
  schedule that claims soundness publishes nothing intra-stage,
  ``SCHED003`` when a declaration is inconsistent with the registry's
  name catalog.  This is the gate a future async dataflow executor's
  declared cell-publication order must pass.
"""

from __future__ import annotations

import ast

from repro.check.callgraph import FunctionInfo, ModuleInfo, ProjectIndex
from repro.check.findings import Finding
from repro.check.lattice import (
    ABSTRACT_RANKS,
    AbstractRank,
    AwaitEvent,
    Branch,
    CollectiveEvent,
    CONST,
    EXPR,
    Loop,
    PublishEvent,
    RecvEvent,
    Schedule,
    SendEvent,
    TOP,
    collective_view,
    decide_condition,
    first_difference,
    iter_events,
    render_value,
)
from repro.check.rules import (
    COLLECTIVES,
    _NON_COMM_ROOTS,
    _RECV_METHODS,
    _SEND_METHODS,
    _mentions_rank,
    _receiver_root,
    _resolve_tag,
    _tag_node,
)

__all__ = ["analyze_protocol", "extract_schedules", "check_declared_schedules"]

#: Protocol methods analyzed as entry points even though they are methods
#: (the shm two-barrier reduction is the protocol ROADMAP item 3 rides on).
_METHOD_ENTRIES = ("ProcessCommunicator.Allreduce",)

_MAX_INLINE_DEPTH = 24

#: Collective keywords whose values must agree across ranks.
_UNIFORM_META_KEYS = ("root", "op")


# ----------------------------------------------------------------------
# The abstract interpreter
# ----------------------------------------------------------------------
class _FrameState:
    """Per-inlined-function interpretation state."""

    __slots__ = ("module", "class_name", "env", "tainted")

    def __init__(
        self,
        module: ModuleInfo,
        class_name: str | None,
        env: dict[str, int],
        tainted: set[str],
    ):
        self.module = module
        self.class_name = class_name
        self.env = env
        self.tainted = tainted


class _Interpreter:
    """Extracts one abstract rank's schedule for one entry point."""

    def __init__(self, index: ProjectIndex, rank: AbstractRank):
        self.index = index
        self.rank = rank
        self.meta_taints: list[tuple[str, int, int, str, str]] = []
        self._stack: list[str] = []
        self._memo: dict[tuple, Schedule] = {}

    # -- public --------------------------------------------------------
    def run(self, entry: FunctionInfo) -> Schedule:
        return self._run_function(entry, frozenset())

    # -- function-level ------------------------------------------------
    def _run_function(
        self, info: FunctionInfo, tainted_params: frozenset[str]
    ) -> Schedule:
        key = (info.qualname, tainted_params)
        if key in self._memo:
            return self._memo[key]
        if info.qualname in self._stack or len(self._stack) >= _MAX_INLINE_DEPTH:
            return Schedule()
        module = self.index.modules[info.path]
        state = _FrameState(
            module,
            info.class_name,
            self.index.constant_env(module),
            set(tainted_params),
        )
        schedule = Schedule()
        self._stack.append(info.qualname)
        try:
            self._walk_body(info.node.body, state, schedule)
        finally:
            self._stack.pop()
        self._memo[key] = schedule
        return schedule

    # -- taint ---------------------------------------------------------
    def _rank_tainted(self, node: ast.AST, state: _FrameState) -> bool:
        if _mentions_rank(node):
            return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and (
                sub.id in state.tainted or "owned" in sub.id
            ):
                return True
        return False

    def _taint_assign(
        self, targets: list[ast.expr], value: ast.expr, state: _FrameState
    ) -> None:
        if not self._rank_tainted(value, state):
            return
        for target in targets:
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    state.tainted.add(name.id)

    # -- statements ----------------------------------------------------
    def _walk_body(
        self, body: list[ast.stmt], state: _FrameState, out: Schedule
    ) -> str | None:
        """Walk *body*; returns ``"return"``/``"break"``/``"continue"``
        when control leaves the block early, ``None`` on fall-through."""
        for stmt in body:
            status = self._walk_stmt(stmt, state, out)
            if status is not None:
                return status
        return None

    def _walk_stmt(
        self, stmt: ast.stmt, state: _FrameState, out: Schedule
    ) -> str | None:
        if isinstance(stmt, ast.Expr):
            self._walk_expr(stmt.value, state, out)
            return None
        if isinstance(stmt, ast.Assign):
            self._walk_expr(stmt.value, state, out)
            self._taint_assign(stmt.targets, stmt.value, state)
            return None
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._walk_expr(stmt.value, state, out)
                self._taint_assign([stmt.target], stmt.value, state)
            return None
        if isinstance(stmt, ast.AugAssign):
            self._walk_expr(stmt.value, state, out)
            if self._rank_tainted(stmt.value, state):
                self._taint_assign([stmt.target], stmt.value, state)
            return None
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._walk_expr(stmt.value, state, out)
            return "return"
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._walk_expr(stmt.exc, state, out)
            return "return"
        if isinstance(stmt, ast.Break):
            return "break"
        if isinstance(stmt, ast.Continue):
            return "continue"
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, state, out)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._walk_for(stmt, state, out)
        if isinstance(stmt, ast.While):
            return self._walk_while(stmt, state, out)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._walk_expr(item.context_expr, state, out)
            return self._walk_body(stmt.body, state, out)
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, state, out)
            for handler in stmt.handlers:
                arm = Schedule()
                self._walk_body(handler.body, state, arm)
                if arm:
                    out.append(
                        Branch(
                            state.module.path, handler.lineno,
                            handler.col_offset, cond="except",
                            rank_dep=False, then=arm,
                        )
                    )
            self._walk_body(stmt.orelse, state, out)
            return self._walk_body(stmt.finalbody, state, out)
        if isinstance(stmt, ast.Assert):
            self._walk_expr(stmt.test, state, out)
            return None
        if isinstance(stmt, ast.Match):
            self._walk_expr(stmt.subject, state, out)
            for case in stmt.cases:
                arm = Schedule()
                self._walk_body(case.body, state, arm)
                if arm:
                    out.append(
                        Branch(
                            state.module.path, case.pattern.lineno,
                            case.pattern.col_offset, cond="case",
                            rank_dep=self._rank_tainted(stmt.subject, state),
                            then=arm,
                        )
                    )
            return None
        # Nested defs/classes execute at their caller's discretion;
        # imports, pass, global/nonlocal and deletes carry no events.
        return None

    def _walk_if(
        self, stmt: ast.If, state: _FrameState, out: Schedule
    ) -> str | None:
        self._walk_expr(stmt.test, state, out)
        tainted = frozenset(state.tainted)
        decision = decide_condition(stmt.test, self.rank, state.env, tainted)
        rank_related = self._rank_tainted(stmt.test, state)
        if rank_related and decision is not None:
            # Feasible-path selection: this abstract rank takes one arm.
            arm = stmt.body if decision else stmt.orelse
            return self._walk_body(arm, state, out)
        then = Schedule()
        orelse = Schedule()
        status_then = self._walk_body(stmt.body, state, then)
        status_else = self._walk_body(stmt.orelse, state, orelse)
        if then or orelse:
            out.append(
                Branch(
                    state.module.path, stmt.lineno, stmt.col_offset,
                    cond=_safe_unparse(stmt.test), rank_dep=rank_related,
                    then=then, orelse=orelse,
                )
            )
        if status_then is not None and status_then == status_else:
            return status_then
        return None

    def _walk_for(
        self, stmt: ast.For | ast.AsyncFor, state: _FrameState, out: Schedule
    ) -> str | None:
        self._walk_expr(stmt.iter, state, out)
        rank_dep = self._rank_tainted(stmt.iter, state)
        if rank_dep:
            self._taint_assign([stmt.target], stmt.iter, state)
        body = Schedule()
        status = self._walk_body(stmt.body, state, body)
        if body:
            out.append(
                Loop(
                    state.module.path, stmt.lineno, stmt.col_offset,
                    key=_safe_unparse(stmt.iter), rank_dep=rank_dep, body=body,
                )
            )
        self._walk_body(stmt.orelse, state, out)
        return "return" if status == "return" else None

    def _walk_while(
        self, stmt: ast.While, state: _FrameState, out: Schedule
    ) -> str | None:
        self._walk_expr(stmt.test, state, out)
        rank_dep = self._rank_tainted(stmt.test, state)
        body = Schedule()
        status = self._walk_body(stmt.body, state, body)
        if body:
            out.append(
                Loop(
                    state.module.path, stmt.lineno, stmt.col_offset,
                    key=_safe_unparse(stmt.test), rank_dep=rank_dep, body=body,
                )
            )
        self._walk_body(stmt.orelse, state, out)
        return "return" if status == "return" else None

    # -- expressions ---------------------------------------------------
    def _walk_expr(
        self, expr: ast.expr, state: _FrameState, out: Schedule
    ) -> None:
        """Emit events for every call inside *expr*, in source order."""
        for node in _calls_in_order(expr):
            self._handle_call(node, state, out)

    def _handle_call(
        self, call: ast.Call, state: _FrameState, out: Schedule
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            root = _receiver_root(func)
            if root not in _NON_COMM_ROOTS:
                if name == "Publish":
                    out.append(self._publish_event(call, state))
                    return
                if name == "Await":
                    out.append(self._await_event(call, state))
                    return
                if name == "flush_publications":
                    # Transport-level flush of cells already buffered by
                    # Publish: the Publish that queued each cell is the
                    # schedule event, the flush carries no new ones.
                    return
                if name in COLLECTIVES:
                    out.append(self._collective_event(call, name, state))
                    return
                if name in _SEND_METHODS:
                    out.append(self._p2p_event(SendEvent, call, name, state))
                    return
                if name in _RECV_METHODS:
                    out.append(self._p2p_event(RecvEvent, call, name, state))
                    return
        target = self.index.resolve_call(call, state.module, state.class_name)
        if target is None:
            return
        tainted_params = frozenset(
            param
            for param, arg in _bind_args(target, call)
            if self._rank_tainted(arg, state)
        )
        out.extend(self._run_function(target, tainted_params))

    def _collective_event(
        self, call: ast.Call, name: str, state: _FrameState
    ) -> CollectiveEvent:
        meta = []
        for keyword in call.keywords:
            if keyword.arg in _UNIFORM_META_KEYS:
                meta.append(
                    (keyword.arg, self._meta_value(keyword.value, state))
                )
        # Positional reduce op: Allreduce(buffer, op) / allreduce(x, op).
        if name in ("Allreduce", "allreduce", "reduce") and len(call.args) > 1:
            meta.append(("op", self._meta_value(call.args[1], state)))
        for key, value in meta:
            if value[0] == TOP:
                continue
            if isinstance(value[1], str) and value[1].startswith("!rank:"):
                self.meta_taints.append(
                    (state.module.path, call.lineno, call.col_offset, name, key)
                )
        return CollectiveEvent(
            state.module.path, call.lineno, call.col_offset,
            name=name, meta=tuple(meta),
        )

    def _meta_value(self, node: ast.expr, state: _FrameState):
        """Lattice value of an op/root argument, rank-resolved.

        A conditional expression over a decidable rank test resolves to
        the arm this abstract rank takes — that is how
        ``op = MAX if rank == 0 else SUM`` becomes an SPMD102 mismatch.
        Rank-tainted metadata is marked so it can be flagged outright.
        """
        if isinstance(node, ast.IfExp):
            decision = decide_condition(
                node.test, self.rank, state.env, frozenset(state.tainted)
            )
            if decision is not None:
                return self._meta_value(node.body if decision else node.orelse,
                                        state)
        if isinstance(node, ast.Constant):
            return (CONST, node.value)
        if self._rank_tainted(node, state):
            return (EXPR, "!rank:" + _safe_unparse(node))
        if any(isinstance(sub, ast.Call) for sub in ast.walk(node)):
            return (TOP, None)
        return (EXPR, _safe_unparse(node))

    def _publish_event(
        self, call: ast.Call, state: _FrameState
    ) -> PublishEvent:
        """``comm.Publish(key, payload, dest, ...)`` as a schedule node.

        Publications are one-sided: they join the schedule tree (so the
        SCHED rules and trace tooling can see them) but neither the
        collective skeleton nor the SPMD2xx tag pool — asymmetry between
        producing and consuming ranks is the schedule working as designed.
        """
        key = self._meta_value(call.args[0], state) if call.args else (TOP,
                                                                       None)
        dest = (TOP, None)
        if len(call.args) > 2:
            dest = self._meta_value(call.args[2], state)
        for keyword in call.keywords:
            if keyword.arg == "dest":
                dest = self._meta_value(keyword.value, state)
        return PublishEvent(
            state.module.path, call.lineno, call.col_offset,
            key=key, dest=dest,
        )

    def _await_event(self, call: ast.Call, state: _FrameState) -> AwaitEvent:
        """``comm.Await(keys, source)`` as a schedule node."""
        keys = self._meta_value(call.args[0], state) if call.args else (TOP,
                                                                        None)
        source = (TOP, None)
        if len(call.args) > 1:
            source = self._meta_value(call.args[1], state)
        for keyword in call.keywords:
            if keyword.arg == "source":
                source = self._meta_value(keyword.value, state)
        return AwaitEvent(
            state.module.path, call.lineno, call.col_offset,
            keys=keys, source=source,
        )

    def _p2p_event(self, cls, call: ast.Call, name: str, state: _FrameState):
        methods = _SEND_METHODS if cls is SendEvent else _RECV_METHODS
        tag = _resolve_tag(_tag_node(call, methods[name]), state.env)
        if tag[0] == "dynamic":
            tag = (TOP, None)
        peer_index = 1 if cls is SendEvent else 0
        peer = (TOP, None)
        if len(call.args) > peer_index:
            peer = self._meta_value(call.args[peer_index], state)
        return cls(
            state.module.path, call.lineno, call.col_offset,
            tag=tag, peer=peer,
        )


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return "<expr>"


def _calls_in_order(expr: ast.expr) -> list[ast.Call]:
    calls = [node for node in ast.walk(expr) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _bind_args(target: FunctionInfo, call: ast.Call):
    """(param_name, arg_expr) pairs for positional and keyword args."""
    params = target.params
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    bound = list(zip(params, call.args))
    named = set(params)
    for keyword in call.keywords:
        if keyword.arg in named:
            bound.append((keyword.arg, keyword.value))
    return bound


# ----------------------------------------------------------------------
# Schedule extraction and rule evaluation
# ----------------------------------------------------------------------
def extract_schedules(
    index: ProjectIndex, entries: list[FunctionInfo] | None = None
) -> dict[str, dict[str, Schedule]]:
    """``{entry_qualname: {rank_name: schedule}}`` plus meta taints.

    The per-entry dict also carries the interpreter's metadata taints
    under the reserved key ``"__meta_taints__"``.
    """
    if entries is None:
        entries = _default_entries(index)
    result: dict[str, dict] = {}
    for entry in entries:
        per_rank: dict[str, Schedule] = {}
        taints: list = []
        for rank in ABSTRACT_RANKS:
            interp = _Interpreter(index, rank)
            per_rank[rank.name] = interp.run(entry)
            taints.extend(interp.meta_taints)
        per_rank["__meta_taints__"] = taints  # type: ignore[assignment]
        result[entry.qualname] = per_rank
    return result


def _default_entries(index: ProjectIndex) -> list[FunctionInfo]:
    entries = index.entry_points()
    seen = {info.qualname for info in entries}
    for qualname, info in index.functions.items():
        if qualname in seen:
            continue
        if any(qualname.endswith(suffix) for suffix in _METHOD_ENTRIES):
            entries.append(info)
            seen.add(qualname)
    return sorted(entries, key=lambda info: info.qualname)


def analyze_protocol(
    modules: dict[str, ast.Module],
    *,
    index: ProjectIndex | None = None,
    declarations=None,
) -> list[Finding]:
    """Run the whole protocol pass over parsed *modules*.

    *declarations* overrides the registry's executor schedules (used by
    the fault-injection tests); by default SCHED rules run only when the
    registry module itself is part of the analyzed tree.
    """
    if index is None:
        index = ProjectIndex(modules)
    findings: list[Finding] = []
    schedules = extract_schedules(index)
    for qualname, per_rank in schedules.items():
        findings.extend(_check_divergence(qualname, per_rank))
        findings.extend(_check_meta_taints(per_rank["__meta_taints__"]))
        findings.extend(_check_rank_dep_loops(per_rank))
    findings.extend(_check_tag_pool(schedules))
    findings.extend(_check_declared_in_tree(index, declarations))
    return _dedupe(findings)


# -- SPMD101/SPMD102: collective agreement ------------------------------
def _check_divergence(qualname: str, per_rank: dict) -> list[Finding]:
    findings: list[Finding] = []
    ranks = [rank for rank in ABSTRACT_RANKS]
    views = {
        rank.name: collective_view(per_rank[rank.name]) for rank in ranks
    }
    # In-tree check: a rank-dependent branch whose collective arms differ
    # is divergence even when the condition is undecidable (rank % 2 ...).
    for rank in ranks:
        for node in iter_events(views[rank.name]):
            if isinstance(node, Branch) and node.rank_dep:
                diff = first_difference(node.then, node.orelse)
                if diff is not None:
                    event = diff[0] or diff[1] or node
                    findings.append(
                        Finding(
                            "SPMD101", event.path, event.line, event.col,
                            f"collective schedule diverges at rank-dependent "
                            f"branch '{node.cond}' in {qualname}: ranks taking "
                            "different arms reach different collective "
                            "sequences and deadlock (static SAN101/SAN103)",
                        )
                    )
    # Cross-rank check: the feasible paths of rank 0 and a non-zero rank
    # must produce identical collective skeletons.
    for left, right in zip(ranks, ranks[1:]):
        diff = first_difference(views[left.name], views[right.name])
        if diff is None:
            continue
        node_a, node_b, why = diff
        event = node_a or node_b
        rule = "SPMD102" if why == "meta" else "SPMD101"
        if why == "meta":
            message = (
                f"collective '{node_a.name}' metadata differs between "
                f"{left.describe()} and {right.describe()} in {qualname}: "
                f"{_render_meta(node_a.meta)} vs {_render_meta(node_b.meta)} "
                "(static SAN102)"
            )
        else:
            have, miss = (left, right) if node_a is not None else (right, left)
            message = (
                f"collective schedules diverge between {left.describe()} and "
                f"{right.describe()} in {qualname}: "
                f"{have.describe()} reaches {event.describe()} here, "
                f"{miss.describe()} does not — every peer deadlocks at this "
                "call (static SAN101/SAN103)"
            )
        findings.append(
            Finding(rule, event.path, event.line, event.col, message)
        )
    return findings


def _render_meta(meta: tuple) -> str:
    if not meta:
        return "{}"
    return "{" + ", ".join(
        f"{key}={render_value(value)}" for key, value in meta
    ) + "}"


def _check_meta_taints(taints: list) -> list[Finding]:
    return [
        Finding(
            "SPMD102", path, line, col,
            f"collective '{name}' takes a rank-dependent '{key}' argument — "
            "collective metadata must be identical on every rank "
            "(static SAN102)",
        )
        for path, line, col, name, key in taints
    ]


def _check_rank_dep_loops(per_rank: dict) -> list[Finding]:
    findings: list[Finding] = []
    for rank in ABSTRACT_RANKS:
        view = collective_view(per_rank[rank.name])
        findings.extend(_scan_loops(view, inside_rank_loop=False))
    return findings


def _scan_loops(schedule: Schedule, inside_rank_loop: bool) -> list[Finding]:
    findings: list[Finding] = []
    for node in schedule.items:
        if isinstance(node, CollectiveEvent) and inside_rank_loop:
            findings.append(
                Finding(
                    "SPMD103", node.path, node.line, node.col,
                    f"collective '{node.name}' inside a loop with a "
                    "rank-dependent trip count — each rank issues a "
                    "different number of collectives and the world "
                    "deadlocks at the first mismatch",
                )
            )
        elif isinstance(node, Branch):
            findings.extend(_scan_loops(node.then, inside_rank_loop))
            findings.extend(_scan_loops(node.orelse, inside_rank_loop))
        elif isinstance(node, Loop):
            findings.extend(
                _scan_loops(node.body, inside_rank_loop or node.rank_dep)
            )
    return findings


# -- SPMD201/SPMD202: interprocedural tag matching ----------------------
def _check_tag_pool(schedules: dict) -> list[Finding]:
    sends: dict[tuple, SendEvent] = {}
    recvs: dict[tuple, RecvEvent] = {}
    for per_rank in schedules.values():
        for rank in ABSTRACT_RANKS:
            for node in iter_events(per_rank[rank.name]):
                if isinstance(node, SendEvent):
                    sends[(node.path, node.line, node.col)] = node
                elif isinstance(node, RecvEvent):
                    recvs[(node.path, node.line, node.col)] = node
    if any(event.tag[0] == TOP for event in recvs.values()):
        # A dynamic receive may match any tag: the pool is wildcard and
        # no static claim about unmatched tags is sound.
        return []
    recv_tags = {event.tag for event in recvs.values()}
    send_tags = {event.tag for event in sends.values() if event.tag[0] != TOP}
    findings: list[Finding] = []
    for event in sends.values():
        if event.tag[0] == TOP or event.tag in recv_tags:
            continue
        findings.append(
            Finding(
                "SPMD201", event.path, event.line, event.col,
                f"send with tag {render_value(event.tag)} has no matching "
                "receive anywhere in the analyzed program (cross-module "
                "constant resolution) — the paired recv blocks forever "
                "(static SAN104)",
            )
        )
    for event in recvs.values():
        if event.tag in send_tags:
            continue
        findings.append(
            Finding(
                "SPMD202", event.path, event.line, event.col,
                f"receive with tag {render_value(event.tag)} that no send "
                "in the analyzed program produces — this recv blocks "
                "forever (static SAN104)",
            )
        )
    return findings


# -- SCHED0xx: dependency-schedule legality -----------------------------
#: Deterministic nested/sequential sample structures (dot-bracket); the
#: legality check is exact on each sample, so one counterexample is a
#: proof of illegality while agreement on all samples is strong evidence
#: (the dependency matrix theorem makes right-endpoint order exact).
_SCHED_SAMPLES = (
    "((()))",
    "(()(()))",
    "((())(()))()",
    "(((&)))((&))".replace("&", "()"),
)


def _publication_positions(s1, order: str):
    """arc index -> publication position under the declared *order*."""
    import numpy as np

    n = s1.n_arcs
    if order == "right-endpoint":
        ranking = np.argsort(s1.rights, kind="stable")
    elif order == "left-endpoint":
        ranking = np.argsort(s1.lefts, kind="stable")
    elif order == "reverse-right-endpoint":
        ranking = np.argsort(-s1.rights, kind="stable")
    else:
        return None
    positions = np.empty(n, dtype=np.int64)
    positions[ranking] = np.arange(n)
    return positions


def check_declared_schedules(declarations) -> list[tuple]:
    """Legality verdicts for executor schedule declarations.

    Returns ``(declaration, verdict, detail)`` tuples where *verdict* is
    one of ``"ok"``, ``"illegal-order"``, ``"no-publication"``,
    ``"inconsistent"``.  Declarations that do not claim soundness are
    skipped (the ``deferred`` ablation is *documented* as unsound).
    """
    from repro.analysis.depgraph import arc_dependency_pairs
    from repro.structure.dotbracket import from_dotbracket

    results = []
    for decl in declarations:
        verdict, detail = _verdict_of(decl, arc_dependency_pairs,
                                      from_dotbracket)
        results.append((decl, verdict, detail))
    return results


def _verdict_of(decl, arc_dependency_pairs, from_dotbracket):
    from repro.runtime.registry import ALGORITHMS, SYNC_MODES

    executor, _, sync_mode = decl.key.partition(":")
    if executor not in ALGORITHMS or (
        sync_mode and sync_mode not in SYNC_MODES
    ):
        return (
            "inconsistent",
            f"declaration {decl.key!r} names an executor/sync mode the "
            "registry does not know",
        )
    if not decl.claims_sound:
        return ("ok", "declared unsound; skipped")
    if decl.publishes == "none":
        return (
            "no-publication",
            f"schedule {decl.key!r} claims soundness but publishes no "
            "cells intra-stage: every d1/d2 read at a matched arc would "
            "see a stale peer row",
        )
    for text in _SCHED_SAMPLES:
        s1 = from_dotbracket(text)
        positions = _publication_positions(s1, decl.order)
        if positions is None:
            return (
                "inconsistent",
                f"schedule {decl.key!r} declares unknown publication "
                f"order {decl.order!r}",
            )
        for reader, dep in arc_dependency_pairs(s1):
            if positions[dep] >= positions[reader]:
                return (
                    "illegal-order",
                    f"schedule {decl.key!r} publishes arc {dep} (cell row "
                    f"{int(s1.lefts[dep]) + 1}) at position "
                    f"{int(positions[dep])}, after its reader arc {reader} "
                    f"at position {int(positions[reader])} — the d1/d2 "
                    f"read at the matched arc uses an unpublished cell "
                    f"(sample structure {text!r}; runtime verdict would "
                    "be SAN202/diverged tables)",
                )
    return ("ok", "publication order covers every dependency")


def _check_declared_in_tree(index: ProjectIndex, declarations) -> list[Finding]:
    registry_module = None
    for info in index.modules.values():
        if info.name.endswith("runtime.registry") or info.path.replace(
            "\\", "/"
        ).endswith("runtime/registry.py"):
            registry_module = info
            break
    if declarations is None:
        if registry_module is None:
            return []
        try:
            from repro.runtime.registry import executor_schedules
        except ImportError:  # pragma: no cover - package not importable
            return []
        declarations = executor_schedules()
    findings = []
    verdict_rules = {
        "illegal-order": "SCHED001",
        "no-publication": "SCHED002",
        "inconsistent": "SCHED003",
    }
    for decl, verdict, detail in check_declared_schedules(declarations):
        if verdict == "ok":
            continue
        path, line = _declaration_site(registry_module, decl)
        findings.append(Finding(verdict_rules[verdict], path, line, 0, detail))
    return findings


def _declaration_site(registry_module, decl) -> tuple[str, int]:
    if registry_module is None:
        return ("<declarations>", 1)
    try:
        with open(registry_module.path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if f'"{decl.key}"' in line or f"'{decl.key}'" in line:
                    return (registry_module.path, lineno)
    except OSError:  # pragma: no cover - racing file removal
        pass
    return (registry_module.path, 1)


def _dedupe(findings: list[Finding]) -> list[Finding]:
    seen = set()
    unique = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    unique.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return unique
