"""Runtime SPMD sanitizers: collective stamping and memo-race detection.

:class:`SanitizedCommunicator` wraps any
:class:`~repro.mpi.communicator.Communicator` (in-process threads, the
pipe/process backend, shared memory on or off) and enforces the protocol
PRNA's correctness silently assumes:

* every collective is stamped with a per-rank **sequence number, op,
  dtype, shape, root, and call site**; the stamps rendezvous at rank 0
  *before* the real collective runs, so a diverging rank is reported as a
  diagnostic instead of a deadlock or silent corruption;
* the rendezvous (and sanitized ``recv``) polls with a **deadline**, so a
  rank that never arrives converts a hang into a timeout diagnostic
  naming the missing rank and the waiting call site;
* memo tables registered through :meth:`SanitizedCommunicator.guard_memo`
  are diffed against a per-rank **shadow copy** at every row
  ``Allreduce`` — out-of-partition writes, cross-rank write/write
  overlaps, and reads of cells a peer wrote in the same two-barrier
  window all raise with the offending cells.

Diagnostic codes (all raised as :class:`~repro.errors.SanitizerError`):

========  ==========================================================
SAN101    ranks disagree on which collective (or which sequence
          number) is being executed
SAN102    collective metadata mismatch (op / dtype / shape / root)
SAN103    a rank never arrived at the collective before the timeout
SAN104    sanitized ``recv`` timed out (mismatched send/recv tags)
SAN201    cross-rank write/write overlap in the Allreduce window
SAN202    write outside the rank's owned partition
SAN203    read of a cell a peer wrote in the same window
SAN204    publication with a key outside the declared schedule
SAN205    publication order violates the declared dependency order
========  ==========================================================

The dataflow executor's one-sided substrate is sanitized too: the
executor hands over its derived plan via
:meth:`SanitizedCommunicator.declare_publication_schedule`, and every
subsequent ``Publish`` is validated *locally* against it — stray keys
(SAN204) and dependencies published after their readers (SAN205) raise
at the offending call site with zero extra traffic, while a sanitized
``Await`` polls with the deadline so an absent publication becomes a
SAN104 diagnostic instead of a hang.  This is the runtime twin of the
static SCHED001–003 proof in :mod:`repro.check.protocol`.

The wrapper is **result-transparent**: it validates and then delegates,
so sanitized runs are bit-identical to plain ones (asserted by tests),
and the zero-copy shared-memory reduction path is preserved because the
inner communicator still sees its own shm-backed buffers.  Overhead is
accounted in ``CommStats.sanitizer_checks`` / ``sanitizer_ns`` and, when
a tracer is attached, as spans with category ``"sanitizer"``.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Sequence

import numpy as np

from repro.errors import CommunicatorError, SanitizerError
from repro.mpi.communicator import _PUBLISH_TAG, Communicator, ReduceOp

__all__ = ["SanitizedCommunicator", "SanitizedMemoTable"]

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))
_COMM_DIR = os.path.join(os.path.dirname(_PKG_DIR), "mpi")


def _call_site() -> str:
    """``file.py:line (function)`` of the first frame outside the
    sanitizer and the communicator plumbing."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        directory = os.path.dirname(os.path.abspath(filename))
        if directory != _PKG_DIR and not os.path.abspath(filename).startswith(
            os.path.join(_COMM_DIR, "communicator")
        ):
            return (
                f"{os.path.basename(filename)}:{frame.f_lineno} "
                f"({frame.f_code.co_name})"
            )
        frame = frame.f_back
    return "<unknown>"


class _MemoGuard:
    """Shadow state for one guarded memo table on one rank."""

    __slots__ = ("values", "shadow", "owned_cols", "reads")

    def __init__(self, values: np.ndarray, owned_cols: np.ndarray | None):
        self.values = values
        self.shadow = values.copy()
        self.owned_cols = (
            np.unique(np.asarray(owned_cols, dtype=np.int64))
            if owned_cols is not None
            else None
        )
        #: cells read via ``lookup`` since the last synchronization,
        #: keyed by row.
        self.reads: dict[int, set[int]] = {}

    def note_read(self, i1: int, i2: int) -> None:
        self.reads.setdefault(int(i1), set()).add(int(i2))

    def locate_row(self, buffer: np.ndarray) -> int | None:
        """Row index of *buffer* inside the guarded table, or None."""
        if (
            buffer.ndim != 1
            or buffer.shape[0] != self.values.shape[1]
            or not np.shares_memory(buffer, self.values)
        ):
            return None
        base = self.values.__array_interface__["data"][0]
        addr = buffer.__array_interface__["data"][0]
        stride = self.values.shape[1] * self.values.itemsize
        offset = addr - base
        if offset % stride:
            return None
        return offset // stride


class SanitizedMemoTable:
    """Drop-in :class:`~repro.core.memo.DenseMemoTable` wrapper.

    Reads through :meth:`lookup` are reported to the guard so the
    sanitizer can flag unordered cross-rank read/write (SAN203); writes
    need no instrumentation — the shadow diff at each ``Allreduce``
    catches direct NumPy stores too.
    """

    __slots__ = ("_table", "_guard")

    def __init__(self, table, guard: _MemoGuard):
        self._table = table
        self._guard = guard

    @property
    def values(self) -> np.ndarray:
        return self._table.values

    @property
    def known(self):
        return getattr(self._table, "known", None)

    @property
    def shape(self) -> tuple[int, int]:
        return self._table.values.shape

    def store(self, i1: int, i2: int, value: int) -> None:
        """Store a memo value (delegates; the shadow diff audits writes)."""
        self._table.store(i1, i2, value)

    def lookup(self, i1: int, i2: int):
        """Look up a memo value, recording the read for SAN203 checks."""
        self._guard.note_read(i1, i2)
        return self._table.lookup(i1, i2)

    def row(self, i1: int) -> np.ndarray:
        """Row view of the underlying table (Allreduce-compatible)."""
        return self._table.row(i1)

    def nbytes(self) -> int:
        """Table bytes plus the sanitizer's shadow-copy overhead."""
        return int(self._table.nbytes()) + int(self._guard.shadow.nbytes)


class SanitizedCommunicator(Communicator):
    """Validating wrapper around any communicator backend."""

    _STAMP_TAG = 0x5A10
    _VERDICT_TAG = 0x5A11
    _POLL_SECONDS = 0.0005

    def __init__(
        self,
        inner: Communicator,
        *,
        timeout: float = 30.0,
        tracer=None,
    ):
        super().__init__(inner.rank, inner.size, inner.clock, inner.cost_model)
        self._inner = inner
        self._timeout = float(timeout)
        self._tracer = tracer
        self._seq = 0
        self._guards: list[_MemoGuard] = []
        self._polling_ok = True
        self._pub_schedule: dict | None = None
        self._published_arcs: set[int] = set()
        self.stats = inner.stats

    # -- plumbing delegation ----------------------------------------------
    def enable_stats(self):
        """Attach counters on the wrapped communicator (shared object)."""
        self.stats = self._inner.enable_stats()
        return self.stats

    @property
    def inner(self) -> Communicator:
        """The wrapped communicator (escape hatch for tests)."""
        return self._inner

    @property
    def supports_shared_reduction(self) -> bool:
        return self._inner.supports_shared_reduction

    def charge_compute(self, seconds: float) -> None:
        """Charge simulated compute to the wrapped communicator's clock."""
        self._inner.charge_compute(seconds)

    @property
    def simulated_time(self) -> float | None:
        return self._inner.simulated_time

    def close(self) -> None:
        """Release the wrapped communicator's resources."""
        self._inner.close()

    def _send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._inner._send(obj, dest, tag)

    def _recv(self, source: int, tag: int = 0) -> Any:
        return self._inner._recv(source, tag)

    def _try_recv(self, source: int, tag: int = 0) -> tuple[bool, Any]:
        return self._inner._try_recv(source, tag)

    def _barrier(self) -> None:
        self._inner._barrier()

    def _exchange(self, key: str, payload: Any) -> list[Any]:
        return self._inner._exchange(key, payload)

    # -- point to point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send (point-to-point is not stamped)."""
        self._inner.send(obj, dest, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Nonblocking send, delegated to the wrapped communicator."""
        return self._inner.isend(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive with a deadline: a message that never arrives
        (mismatched tags, dead peer) raises SAN104 instead of hanging."""
        if not self._polling_ok:
            return self._inner.recv(source, tag)
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                found, payload = self._inner._try_recv(source, tag)
            except CommunicatorError:
                # Backend without nonblocking receives: sanitize nothing.
                self._polling_ok = False
                return self._inner.recv(source, tag)
            if found:
                if self.stats is not None:
                    self.stats.recvs += 1
                return payload
            if time.monotonic() >= deadline:
                raise SanitizerError(
                    f"SAN104: rank {self._rank} recv(source={source}, "
                    f"tag={tag}) timed out after {self._timeout:.1f}s at "
                    f"{_call_site()} — no matching send arrived (swapped "
                    "or mismatched send/recv tags?)"
                )
            time.sleep(self._POLL_SECONDS)

    # -- publications (dataflow substrate) ----------------------------------
    def declare_publication_schedule(
        self,
        *,
        row_of_arc,
        dep_lo,
        dep_hi,
        expected_installs: int = 0,
    ) -> None:
        """Arm publication validation with the executor's derived plan.

        The dataflow executor calls this (when present — the hook is
        looked up with ``getattr``) before its arc loop, handing over the
        arc→row map and the ``inner_ranges`` dependency bounds its
        :class:`~repro.parallel.dataflow.DataflowPlan` derived.  Every
        subsequent :meth:`Publish` is then checked **locally** against
        the declared right-endpoint schedule: the check needs no
        cross-rank rendezvous because the legality invariant —
        dependencies publish strictly before their readers — is a
        property of each rank's own publication stream.
        """
        self._pub_schedule = {
            "row_of_arc": np.asarray(row_of_arc, dtype=np.int64),
            "dep_lo": np.asarray(dep_lo, dtype=np.int64),
            "dep_hi": np.asarray(dep_hi, dtype=np.int64),
            "expected_installs": int(expected_installs),
        }
        self._published_arcs = set()

    def Publish(
        self, key: Any, payload: Any, dest: int, *, urgent: bool = False
    ) -> None:
        """Validated publication: checked against the declared schedule
        (SAN204/SAN205) before the cells are buffered for coalescing."""
        self._validate_publication(key)
        super().Publish(key, payload, dest, urgent=urgent)

    def _validate_publication(self, key: Any) -> None:
        schedule = self._pub_schedule
        if schedule is None:
            return
        start = time.perf_counter()
        dep_lo, dep_hi = schedule["dep_lo"], schedule["dep_hi"]
        kind, index = (
            key if isinstance(key, tuple) and len(key) == 2 else (None, None)
        )
        if kind == "final":
            # Consolidation block: legal once the arc loop is done, and
            # only for this rank's own owned block.
            if index != self._rank:
                raise SanitizerError(
                    f"SAN204: rank {self._rank} published consolidation "
                    f"block {key!r} for a block it does not own at "
                    f"{_call_site()}"
                )
        elif kind != "row" or not 0 <= int(index) < len(dep_lo):
            raise SanitizerError(
                f"SAN204: rank {self._rank} published stray key {key!r} — "
                "not a cell the declared dataflow schedule ever publishes "
                f"(at {_call_site()})"
            )
        else:
            arc = int(index)
            missing = [
                d
                for d in range(int(dep_lo[arc]), int(dep_hi[arc]))
                if d not in self._published_arcs
            ]
            if missing:
                row = int(schedule["row_of_arc"][arc])
                raise SanitizerError(
                    f"SAN205: rank {self._rank} published arc {arc} (memo "
                    f"row {row}) before its dependencies {missing[:8]} — "
                    "the declared right-endpoint publication order is "
                    "violated, so a consumer's d1/d2 read at the matched "
                    f"arc would use an unpublished cell (Publish at "
                    f"{_call_site()})"
                )
            self._published_arcs.add(arc)
        if self.stats is not None:
            self.stats.sanitizer_checks += 1
            self.stats.sanitizer_ns += int(
                (time.perf_counter() - start) * 1e9
            )

    def _recv_publication(self, source: int) -> Any:
        """Deadline-polled publication receive: a batch that never
        arrives (illegal publication order, dead peer) raises SAN104
        instead of hanging in :meth:`Await`."""
        if not self._polling_ok:
            return self._inner._recv(source, _PUBLISH_TAG)
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                found, payload = self._inner._try_recv(source, _PUBLISH_TAG)
            except CommunicatorError:
                self._polling_ok = False
                return self._inner._recv(source, _PUBLISH_TAG)
            if found:
                return payload
            if time.monotonic() >= deadline:
                declared = (
                    f" (the executor declared "
                    f"{self._pub_schedule['expected_installs']} producer "
                    "streams)"
                    if self._pub_schedule is not None
                    else ""
                )
                raise SanitizerError(
                    f"SAN104: rank {self._rank} awaiting a publication "
                    f"from rank {source} timed out after "
                    f"{self._timeout:.1f}s at {_call_site()} — the "
                    "producer never published the awaited cells"
                    f"{declared}"
                )
            time.sleep(self._POLL_SECONDS)

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        """Validated barrier: stamps rendezvous before the real barrier."""
        self._validate_collective("barrier")
        self._inner.barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Validated broadcast (root cross-checked across ranks)."""
        self._validate_collective("bcast", root=root)
        return self._inner.bcast(obj, root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Validated gather (root cross-checked across ranks)."""
        self._validate_collective("gather", root=root)
        return self._inner.gather(obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        """Validated allgather."""
        self._validate_collective("allgather")
        return self._inner.allgather(obj)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Validated scatter (root cross-checked across ranks)."""
        self._validate_collective("scatter", root=root)
        return self._inner.scatter(objs, root)

    def allreduce(self, value: Any, op: ReduceOp = ReduceOp.SUM) -> Any:
        """Validated object allreduce (reduce op cross-checked)."""
        self._validate_collective("allreduce", reduce_op=str(op))
        return self._inner.allreduce(value, op)

    def Allreduce(self, buffer: np.ndarray, op: ReduceOp = ReduceOp.MAX) -> None:
        """Validated in-place buffer reduction.

        Stamps op/dtype/shape, runs the memo-race window check when
        *buffer* is a row of a guarded table, then delegates — the inner
        backend's zero-copy shared-memory path still engages.
        """
        if isinstance(buffer, np.ndarray):
            self._validate_collective(
                "Allreduce",
                reduce_op=str(op),
                dtype=str(buffer.dtype),
                shape=tuple(buffer.shape),
            )
            guard, row = self._find_guard(buffer)
            if guard is not None:
                self._check_memo_window(guard, row, buffer)
        else:
            self._validate_collective("Allreduce", reduce_op=str(op))
            guard = None
        self._inner.Allreduce(buffer, op)
        if guard is not None:
            self._refresh_guard(guard, row, buffer)

    def allocate_shared(self, shape, dtype=np.int64) -> np.ndarray:
        """Validated collective shared allocation (shape/dtype checked)."""
        self._validate_collective(
            "allocate_shared",
            shape=tuple(int(extent) for extent in shape),
            dtype=str(np.dtype(dtype)),
        )
        return self._inner.allocate_shared(shape, dtype)

    # -- memo-table race detection ----------------------------------------
    def guard_memo(self, table, owned_columns=None) -> SanitizedMemoTable:
        """Register *table* for race detection; returns a sanitized view.

        *table* is a :class:`~repro.core.memo.DenseMemoTable` (or
        anything with a ``values`` array).  *owned_columns* is the set of
        column indices this rank may write between synchronizations
        (``None`` disables the ownership check, keeping only the
        cross-rank overlap and read/write checks).
        """
        values = table.values if hasattr(table, "values") else table
        guard = _MemoGuard(np.asarray(values), owned_columns)
        self._guards.append(guard)
        return SanitizedMemoTable(table, guard)

    def _find_guard(self, buffer: np.ndarray):
        for guard in self._guards:
            row = guard.locate_row(buffer)
            if row is not None:
                return guard, row
        return None, None

    def _check_memo_window(
        self, guard: _MemoGuard, row: int, buffer: np.ndarray
    ) -> None:
        """Collective validation of one row's write window (pre-reduce)."""
        site = _call_site()
        changed = np.flatnonzero(buffer != guard.shadow[row])
        stray = (
            np.setdiff1d(changed, guard.owned_cols)
            if guard.owned_cols is not None
            else np.empty(0, dtype=np.int64)
        )
        reads = sorted(guard.reads.pop(row, ()))
        payload = {
            "rank": self._rank,
            "row": int(row),
            "changed": changed.tolist(),
            "stray": stray.tolist(),
            "reads": reads,
            "site": site,
        }
        # One rendezvous so *every* rank sees the verdict and raises the
        # same diagnostic — no survivor is left blocking in the backend.
        reports = self._inner._exchange("sanitizer:memo", payload)
        for report in reports:
            if report["stray"]:
                cells = ", ".join(
                    f"({report['row']}, {col})" for col in report["stray"][:8]
                )
                raise SanitizerError(
                    f"SAN202: rank {report['rank']} wrote outside its owned "
                    f"partition in the Allreduce window: cells {cells} "
                    f"(Allreduce at {report['site']})"
                )
        for i, left in enumerate(reports):
            left_changed = set(left["changed"])
            for right in reports[i + 1:]:
                overlap = left_changed & set(right["changed"])
                if overlap:
                    col = min(overlap)
                    raise SanitizerError(
                        f"SAN201: ranks {left['rank']} and {right['rank']} "
                        f"both wrote cell ({left['row']}, {col}) in the "
                        "same Allreduce window (write/write race; "
                        f"Allreduce at {left['site']})"
                    )
            for right in reports:
                if right["rank"] == left["rank"]:
                    continue
                racy = set(left["reads"]) & set(right["changed"])
                if racy:
                    col = min(racy)
                    raise SanitizerError(
                        f"SAN203: rank {left['rank']} read cell "
                        f"({left['row']}, {col}) that rank {right['rank']} "
                        "wrote in the same window (unordered read/write; "
                        f"Allreduce at {left['site']})"
                    )

    @staticmethod
    def _refresh_guard(
        guard: _MemoGuard, row: int, buffer: np.ndarray
    ) -> None:
        guard.shadow[row] = buffer

    # -- stamp rendezvous --------------------------------------------------
    def _validate_collective(self, name: str, **meta: Any) -> None:
        start = time.perf_counter()
        seq, self._seq = self._seq, self._seq + 1
        stamp = {"seq": seq, "op": name, "site": _call_site(), **meta}
        if self._tracer is not None:
            with self._tracer.span(
                "sanitizer_check", rank=self._rank, category="sanitizer",
                op=name, seq=seq,
            ):
                self._rendezvous(stamp)
        else:
            self._rendezvous(stamp)
        if self.stats is not None:
            self.stats.sanitizer_checks += 1
            self.stats.sanitizer_ns += int(
                (time.perf_counter() - start) * 1e9
            )

    def _rendezvous(self, stamp: dict) -> None:
        if self._size == 1 or not self._polling_ok:
            return
        deadline = time.monotonic() + self._timeout
        if self._rank == 0:
            stamps: list[dict | None] = [None] * self._size
            stamps[0] = stamp
            waiting = set(range(1, self._size))
            while waiting:
                for source in sorted(waiting):
                    try:
                        found, payload = self._inner._try_recv(
                            source, self._STAMP_TAG
                        )
                    except CommunicatorError:
                        self._polling_ok = False
                        return
                    if found:
                        stamps[source] = payload
                        waiting.discard(source)
                if not waiting:
                    break
                if time.monotonic() >= deadline:
                    missing = ", ".join(str(r) for r in sorted(waiting))
                    raise SanitizerError(
                        f"SAN103: rank(s) {missing} never arrived at "
                        f"collective #{stamp['seq']} ({stamp['op']}) within "
                        f"{self._timeout:.1f}s — rank 0 is waiting at "
                        f"{stamp['site']} (rank-conditional collective or "
                        "a peer hung?)"
                    )
                time.sleep(self._POLL_SECONDS)
            verdict = self._validate_stamps(stamps)
            for dest in range(1, self._size):
                self._inner._send(verdict, dest, self._VERDICT_TAG)
            if verdict is not None:
                raise SanitizerError(verdict)
        else:
            self._inner._send(stamp, 0, self._STAMP_TAG)
            while True:
                try:
                    found, verdict = self._inner._try_recv(
                        0, self._VERDICT_TAG
                    )
                except CommunicatorError:
                    self._polling_ok = False
                    return
                if found:
                    break
                if time.monotonic() >= deadline:
                    raise SanitizerError(
                        f"SAN103: rank {self._rank} got no sanitizer "
                        f"verdict for collective #{stamp['seq']} "
                        f"({stamp['op']}, called at {stamp['site']}) within "
                        f"{self._timeout:.1f}s — rank 0 diverged or hung"
                    )
                time.sleep(self._POLL_SECONDS)
            if verdict is not None:
                raise SanitizerError(verdict)

    @staticmethod
    def _validate_stamps(stamps: list[dict | None]) -> str | None:
        reference = stamps[0]
        assert reference is not None
        for rank, stamp in enumerate(stamps[1:], start=1):
            assert stamp is not None
            if stamp["seq"] != reference["seq"] or stamp["op"] != reference["op"]:
                return (
                    f"SAN101: collective sequence diverged — rank 0 is at "
                    f"#{reference['seq']} {reference['op']} "
                    f"({reference['site']}) but rank {rank} is at "
                    f"#{stamp['seq']} {stamp['op']} ({stamp['site']})"
                )
            for key in ("reduce_op", "dtype", "shape", "root"):
                if stamp.get(key) != reference.get(key):
                    return (
                        f"SAN102: collective #{reference['seq']} "
                        f"{reference['op']} metadata mismatch — rank 0 has "
                        f"{key}={reference.get(key)!r} ({reference['site']}) "
                        f"but rank {rank} has {key}={stamp.get(key)!r} "
                        f"({stamp['site']})"
                    )
        return None
