"""``python -m repro.check.demo`` — sanitized-run transparency smoke test.

Runs PRNA twice on the process backend over two ranks — plain and under
the runtime sanitizer — asserts the results are bit-identical, and prints
the sanitizer's measured overhead from ``CommStats``.  Exits 0 on
success, 1 on any divergence; wired into ``make verify``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.parallel.prna import prna
from repro.structure.generators import contrived_worst_case


def main() -> int:
    """Run the plain-vs-sanitized comparison; returns an exit code."""
    s1 = contrived_worst_case(80)
    s2 = contrived_worst_case(80)
    plain = prna(s1, s2, 2, backend="process", collect_stats=True)
    sanitized = prna(
        s1, s2, 2, backend="process", sanitize=True, collect_stats=True
    )
    if sanitized.score != plain.score:
        print(
            f"FAIL: sanitized score {sanitized.score} != plain {plain.score}"
        )
        return 1
    if not np.array_equal(plain.memo.values, sanitized.memo.values):
        print("FAIL: sanitized memo table diverged from plain run")
        return 1
    stats = sanitized.comm_stats or {}
    checks = stats.get("sanitizer_checks", 0)
    millis = stats.get("sanitizer_ns", 0) / 1e6
    if checks <= 0:
        print("FAIL: sanitizer performed no checks")
        return 1
    print(
        f"sanitize-demo: OK — score {sanitized.score}, bit-identical memo "
        f"table, {checks} collective validations ({millis:.1f} ms sanitizer "
        "overhead on rank 0)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
