"""Incremental findings cache for the static pass.

Real analyzers are run on every save; the protocol pass is whole-program
and therefore super-linear in tree size, so re-running it on an unchanged
tree has to be near-free.  The cache stores, per analyzed file, the
SHA-256 of its contents plus the findings produced for it, and — because
per-file findings now depend on *project-wide* facts (cross-module
constants for SPMD002, shm factories for SPMD003) — a **project
signature** hashing those facts.  A per-file entry is reused only when
both its content hash and the project signature match.

Protocol and dataflow findings are whole-program by construction, so they
are keyed by the **tree hash** (hash of every file's content hash plus
the analysis flags — which fold in the enabled rule-set version,
:data:`repro.check.findings.RULESET_VERSION`, so toggling ``--dataflow``
or changing the rule catalog invalidates stale entries).  The fast path:
when every file's hash is unchanged, :meth:`CheckCache.lookup_tree`
returns the complete cached result — per-file and protocol findings —
without parsing a single module, which is what makes the warm re-run an
order of magnitude cheaper than the cold one (the acceptance bar in
``BENCH_check.json``).

The cache file is JSON under ``.repro-check-cache.json`` next to the
tree being analyzed (or an explicit ``--cache PATH``); a version bump in
:data:`CACHE_VERSION` invalidates old caches wholesale.  Rule catalog
changes need no manual bump: the catalog's content hash is part of both
the tree flags and the project signature.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.check.findings import RULESET_VERSION, Finding

__all__ = ["CheckCache", "file_sha", "CACHE_VERSION"]

CACHE_VERSION = 2

DEFAULT_CACHE_NAME = ".repro-check-cache.json"


def file_sha(data: bytes) -> str:
    """SHA-256 hex digest of one file's raw bytes (the cache key)."""
    return hashlib.sha256(data).hexdigest()


def _findings_to_json(findings: list[Finding]) -> list[dict]:
    return [finding.as_dict() for finding in findings]


def _findings_from_json(items: list[dict]) -> list[Finding]:
    return [Finding(**item) for item in items]


class CheckCache:
    """Content-hash-keyed findings cache with a whole-tree fast path."""

    def __init__(self, cache_path: str):
        self.cache_path = cache_path
        self._data = self._load()
        self.hits = 0
        self.misses = 0

    def _load(self) -> dict:
        try:
            with open(self.cache_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return self._empty()
        if data.get("version") != CACHE_VERSION:
            return self._empty()
        return data

    @staticmethod
    def _empty() -> dict:
        return {
            "version": CACHE_VERSION,
            "project_sig": None,
            "tree_sha": None,
            "files": {},
            "protocol": [],
            "dataflow": [],
        }

    # ------------------------------------------------------------------
    @staticmethod
    def project_signature(index) -> str:
        """Hash of the interprocedural facts per-file findings depend on."""
        digest = hashlib.sha256()
        digest.update(f"rules:{RULESET_VERSION};".encode())
        for path in sorted(index.modules):
            info = index.modules[path]
            digest.update(info.name.encode())
            for name in sorted(info.constants):
                digest.update(f"{name}={info.constants[name]};".encode())
        for name in sorted(index.shm_factories):
            digest.update(f"factory:{name};".encode())
        return digest.hexdigest()

    @staticmethod
    def tree_sha(shas: dict[str, str], flags: str = "") -> str:
        """One digest over every (path, sha) pair plus analysis flags."""
        digest = hashlib.sha256()
        digest.update(flags.encode())
        for path in sorted(shas):
            digest.update(path.encode())
            digest.update(shas[path].encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def lookup_tree(self, shas: dict[str, str], flags: str = ""):
        """Complete cached result when *nothing* changed, else ``None``.

        Returns ``(per_file_findings, protocol_findings,
        dataflow_findings)`` without requiring a parse of any module.
        *flags* folds analysis-mode switches (``--protocol``,
        ``--dataflow``) and the rule-set version into the key, so a cache
        written without a pass — or against an older rule catalog — never
        satisfies a run that wants it.
        """
        if self._data.get("tree_sha") != self.tree_sha(shas, flags):
            return None
        cached_files = self._data.get("files", {})
        if set(cached_files) != set(shas):
            return None
        per_file: list[Finding] = []
        for path, sha in shas.items():
            entry = cached_files.get(path)
            if entry is None or entry.get("sha") != sha:
                return None
            per_file.extend(_findings_from_json(entry.get("findings", [])))
        protocol = _findings_from_json(self._data.get("protocol", []))
        dataflow = _findings_from_json(self._data.get("dataflow", []))
        self.hits += len(shas)
        return per_file, protocol, dataflow

    def lookup_file(
        self, path: str, sha: str, project_sig: str
    ) -> list[Finding] | None:
        """Cached per-file findings when the file and project match."""
        if self._data.get("project_sig") != project_sig:
            self.misses += 1
            return None
        entry = self._data.get("files", {}).get(path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        return _findings_from_json(entry.get("findings", []))

    # ------------------------------------------------------------------
    def store(
        self,
        shas: dict[str, str],
        project_sig: str,
        per_file: dict[str, list[Finding]],
        protocol: list[Finding],
        flags: str = "",
        dataflow_findings: list[Finding] | None = None,
    ) -> None:
        """Persist this run's findings keyed by content hashes.

        Written atomically (tempfile + ``os.replace``); I/O failures are
        swallowed — the cache is an accelerator, never a correctness
        dependency.
        """
        self._data = {
            "version": CACHE_VERSION,
            "project_sig": project_sig,
            "tree_sha": self.tree_sha(shas, flags),
            "files": {
                path: {
                    "sha": shas[path],
                    "findings": _findings_to_json(per_file.get(path, [])),
                }
                for path in shas
            },
            "protocol": _findings_to_json(protocol),
            "dataflow": _findings_to_json(dataflow_findings or []),
        }
        tmp = self.cache_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self._data, handle)
            os.replace(tmp, self.cache_path)
        except OSError:  # pragma: no cover - read-only tree; cache is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass
