"""Finding records and the static rule catalog.

Every static rule has a stable ID (``SPMD001``...), a one-line summary
here, and a full description with examples in ``docs/static-analysis.md``.
Runtime sanitizer diagnostics use the ``SAN1xx``/``SAN2xx`` space and are
documented alongside (they are raised, not collected, so they carry no
:class:`Finding`).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import asdict, dataclass

__all__ = [
    "RULES",
    "DEPRECATED_RULES",
    "RULESET_VERSION",
    "Finding",
    "is_suppressed",
]

#: Static rule catalog: ID -> one-line summary.
RULES: dict[str, str] = {
    "SPMD001": (
        "collective call under rank-dependent control flow (a rank that "
        "skips a collective deadlocks every peer)"
    ),
    "SPMD002": (
        "send with a constant tag that no receive in this module matches "
        "(the receiver will block forever)"
    ),
    "SPMD003": (
        "write to a shared-memory-backed array outside an owned-partition "
        "guard (cross-rank write/write race in the Allreduce window)"
    ),
    "SPMD004": (
        "deprecated alias of DTYPE101 — narrow integer dtype flows into a "
        "lift-based batched kernel; kept so existing '# noqa: SPMD004' "
        "comments stay effective"
    ),
    "ARCH001": (
        "direct construction of communicators/Tracer/shm memo outside "
        "repro.runtime.context (route through ExecutionContext so plans, "
        "stats and sanitizers stay consistent)"
    ),
    # -- protocol verifier (interprocedural, rank-symbolic) -------------
    "SPMD101": (
        "collective schedules diverge between feasible rank paths — some "
        "rank reaches a collective its peers never issue and the world "
        "deadlocks there (static counterpart of SAN101/SAN103)"
    ),
    "SPMD102": (
        "aligned collective with rank-dependent metadata (reduce op or "
        "root differs across ranks; static counterpart of SAN102)"
    ),
    "SPMD103": (
        "collective inside a loop whose trip count is rank-dependent — "
        "ranks issue different numbers of collectives and deadlock at "
        "the first mismatch"
    ),
    "SPMD201": (
        "send whose constant tag matches no receive anywhere in the "
        "analyzed program (interprocedural, cross-module constants; "
        "static counterpart of SAN104)"
    ),
    "SPMD202": (
        "receive whose constant tag no send in the analyzed program "
        "produces — this recv blocks forever (static SAN104)"
    ),
    "SCHED001": (
        "executor schedule publishes a memo cell after an arc that reads "
        "it — the d1/d2 dependency order is violated (runtime verdict "
        "would be SAN202/diverged tables)"
    ),
    "SCHED002": (
        "executor schedule claims soundness but publishes nothing "
        "intra-stage (every cross-rank d1/d2 read sees a stale row)"
    ),
    "SCHED003": (
        "executor schedule declaration inconsistent with the registry "
        "(unknown executor, sync mode, or publication order)"
    ),
    "BASE001": (
        "stale baseline entry: a grandfathered finding no longer occurs "
        "— remove it from the baseline so the ratchet stays tight"
    ),
    # -- numeric dataflow verifier (interval/shape abstract interp) -----
    "DTYPE101": (
        "narrow integer dtype reaches a lift/pack kernel whose value "
        "range provably overflows it under the registry's declared input "
        "bounds (the segmented prefix-max lift offsets segment s by "
        "s * stride; semantic replacement for SPMD004)"
    ),
    "DTYPE102": (
        "shifted/packed value provably exceeds the word width of the "
        "integer array it is stored into (interval analysis proves the "
        "packed bits do not fit)"
    ),
    "DTYPE103": (
        "lossy narrowing cast: the value range flowing into an astype()/"
        "narrow store provably exceeds the target dtype's representable "
        "range"
    ),
    "SHAPE101": (
        "memo gather with transposed axes: the np.ix_ row index is "
        "S2-derived or the column index is S1-derived — the memo axis "
        "contract is M[k1-side, k2-side]"
    ),
    "SHAPE102": (
        "elementwise/broadcast/out= operands with provably incompatible "
        "lengths (constant mismatch or same symbolic root at different "
        "offsets — the off-by-one boundary-column class)"
    ),
    "SHAPE103": (
        "gather/scatter index map provably mismatched with its source or "
        "destination length (searchsorted column maps, np.take out=, "
        "dest[idx] = src)"
    ),
    "COST001": (
        "statically extracted loop-nest/vector-op degree of a kernel "
        "disagrees with the degree its registry CostContract declares — "
        "the Planner's WorkModel would misprice every plan using it"
    ),
    "COST002": (
        "cost-contract registry inconsistency: an engine without a "
        "CostContract, or a contract whose entry point does not resolve "
        "in the analyzed tree"
    ),
}

#: Deprecated rule IDs and the rule each one aliases.  A deprecated ID is
#: never emitted, but its ``# noqa`` token still suppresses the canonical
#: rule, and ``--list-rules`` marks it.
DEPRECATED_RULES: dict[str, str] = {
    "SPMD004": "DTYPE101",
}


def _ruleset_version() -> str:
    """Short content hash of the rule catalog.

    Folded into the incremental-cache key (:mod:`repro.check.cache`) so
    adding, removing or re-documenting a rule invalidates cached verdicts
    instead of silently replaying them.
    """
    digest = hashlib.sha256()
    for rule in sorted(RULES):
        digest.update(rule.encode())
        digest.update(RULES[rule].encode())
    for rule in sorted(DEPRECATED_RULES):
        digest.update(f"{rule}->{DEPRECATED_RULES[rule]}".encode())
    return digest.hexdigest()[:12]


#: Version tag of the enabled rule set (content hash of the catalog).
RULESET_VERSION = _ruleset_version()

#: ``# noqa`` / ``# noqa: SPMD001, SPMD003`` on the flagged line.
_NOQA_RE = re.compile(
    r"#\s*noqa\b(?::?\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)


@dataclass(frozen=True)
class Finding:
    """One static-analysis hit: a rule violated at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """Plain-dict form for the ``--json`` CI payload."""
        return asdict(self)


def is_suppressed(rule: str, source_line: str) -> bool:
    """Whether *source_line* carries a ``# noqa`` comment covering *rule*.

    A bare ``# noqa`` suppresses every rule on that line; ``# noqa:
    SPMD001, SPMD003`` suppresses only the listed rules.  Anything after
    the code list (an em-dash rationale, say) is ignored.

    A deprecated alias keeps suppressing its canonical rule: ``# noqa:
    SPMD004`` written against the old dtype smell also covers DTYPE101,
    so deprecating a rule never un-suppresses existing code.
    """
    match = _NOQA_RE.search(source_line)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    listed = {code.strip() for code in codes.split(",")}
    if rule in listed:
        return True
    return any(
        alias in listed
        for alias, canonical in DEPRECATED_RULES.items()
        if canonical == rule
    )
