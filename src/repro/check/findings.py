"""Finding records and the static rule catalog.

Every static rule has a stable ID (``SPMD001``...), a one-line summary
here, and a full description with examples in ``docs/static-analysis.md``.
Runtime sanitizer diagnostics use the ``SAN1xx``/``SAN2xx`` space and are
documented alongside (they are raised, not collected, so they carry no
:class:`Finding`).
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

__all__ = ["RULES", "Finding", "is_suppressed"]

#: Static rule catalog: ID -> one-line summary.
RULES: dict[str, str] = {
    "SPMD001": (
        "collective call under rank-dependent control flow (a rank that "
        "skips a collective deadlocks every peer)"
    ),
    "SPMD002": (
        "send with a constant tag that no receive in this module matches "
        "(the receiver will block forever)"
    ),
    "SPMD003": (
        "write to a shared-memory-backed array outside an owned-partition "
        "guard (cross-rank write/write race in the Allreduce window)"
    ),
    "SPMD004": (
        "narrow integer dtype flows into a lift-based batched kernel (the "
        "segmented prefix-max lift in core/slices.py can overflow it)"
    ),
    "ARCH001": (
        "direct construction of communicators/Tracer/shm memo outside "
        "repro.runtime.context (route through ExecutionContext so plans, "
        "stats and sanitizers stay consistent)"
    ),
    # -- protocol verifier (interprocedural, rank-symbolic) -------------
    "SPMD101": (
        "collective schedules diverge between feasible rank paths — some "
        "rank reaches a collective its peers never issue and the world "
        "deadlocks there (static counterpart of SAN101/SAN103)"
    ),
    "SPMD102": (
        "aligned collective with rank-dependent metadata (reduce op or "
        "root differs across ranks; static counterpart of SAN102)"
    ),
    "SPMD103": (
        "collective inside a loop whose trip count is rank-dependent — "
        "ranks issue different numbers of collectives and deadlock at "
        "the first mismatch"
    ),
    "SPMD201": (
        "send whose constant tag matches no receive anywhere in the "
        "analyzed program (interprocedural, cross-module constants; "
        "static counterpart of SAN104)"
    ),
    "SPMD202": (
        "receive whose constant tag no send in the analyzed program "
        "produces — this recv blocks forever (static SAN104)"
    ),
    "SCHED001": (
        "executor schedule publishes a memo cell after an arc that reads "
        "it — the d1/d2 dependency order is violated (runtime verdict "
        "would be SAN202/diverged tables)"
    ),
    "SCHED002": (
        "executor schedule claims soundness but publishes nothing "
        "intra-stage (every cross-rank d1/d2 read sees a stale row)"
    ),
    "SCHED003": (
        "executor schedule declaration inconsistent with the registry "
        "(unknown executor, sync mode, or publication order)"
    ),
    "BASE001": (
        "stale baseline entry: a grandfathered finding no longer occurs "
        "— remove it from the baseline so the ratchet stays tight"
    ),
}

#: ``# noqa`` / ``# noqa: SPMD001, SPMD003`` on the flagged line.
_NOQA_RE = re.compile(
    r"#\s*noqa\b(?::?\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)


@dataclass(frozen=True)
class Finding:
    """One static-analysis hit: a rule violated at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """Plain-dict form for the ``--json`` CI payload."""
        return asdict(self)


def is_suppressed(rule: str, source_line: str) -> bool:
    """Whether *source_line* carries a ``# noqa`` comment covering *rule*.

    A bare ``# noqa`` suppresses every rule on that line; ``# noqa:
    SPMD001, SPMD003`` suppresses only the listed rules.  Anything after
    the code list (an em-dash rationale, say) is ignored.
    """
    match = _NOQA_RE.search(source_line)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return rule in {code.strip() for code in codes.split(",")}
