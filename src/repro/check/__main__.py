"""``python -m repro.check [paths] [--json]`` — the SPMD static pass."""

import sys

from repro.check.static import main

if __name__ == "__main__":
    sys.exit(main())
