"""Static cost extraction: loop-nest/vector-op degree of each kernel.

The COST0xx half of the ``--dataflow`` pass.  The planner's
:class:`~repro.perf.model.WorkModel` prices stage one as
``seconds_per_cell * rows * cols`` — every per-slice engine is assumed
**degree 2** in the slice dimensions.  :class:`~repro.runtime.registry.
CostContract` pins that assumption to a concrete entry point; this
module extracts each audited kernel's *actual* degree from its AST and
refutes any contract that disagrees (COST001), plus registry-level
inconsistencies (COST002: an engine without a contract, or a contract
whose entry point does not resolve in the analyzed tree).

Degree model
------------
A statement's degree is ``loop_depth + max operand rank``, where

* ``loop_depth`` counts enclosing data-dependent loops — a ``for`` over
  ``range(<non-constant>)`` or over an array, and every ``while``.  A
  loop whose trip count is a literal constant (``range(4)`` row-kernel
  unrolling) contributes nothing: it is a constant factor, not a degree.
* operand rank is the numpy rank of the statement's array operands,
  tracked through a tiny ndim abstraction (constructors, gathers,
  reductions, elementwise ops).  A rank-2 memo gather at top level is
  degree 2; a rank-1 row kernel inside one data-dependent loop is
  ``1 + 1 = 2``.

Calls resolvable through the :class:`~repro.check.callgraph.
ProjectIndex` inline the callee's extracted degree at the caller's
depth (memoized, cycle-guarded), so a driver that loops over a degree-2
kernel extracts as degree 3 — which is exactly why the batched engine's
contract sits on ``_segmented_tabulate`` rather than the chunked batch
driver.

The extractor is deliberately an over-approximation-free *witness*
search: the reported degree is the maximum over statements actually
present, and each extraction records the witness line so a COST001
message points at the statement that proves the disagreement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.callgraph import FunctionInfo, ProjectIndex
from repro.check.findings import Finding

__all__ = ["analyze_costs", "extract_degree", "DegreeWitness"]

#: numpy constructors whose result rank follows the shape argument.
_SHAPED_CONSTRUCTORS = frozenset({"zeros", "empty", "ones", "full"})

#: numpy calls that produce a rank-1 array regardless of input rank.
_RANK1_PRODUCERS = frozenset(
    {
        "arange",
        "concatenate",
        "flatnonzero",
        "nonzero",
        "ravel",
        "sort",
        "argsort",
    }
)

#: numpy calls whose result rank equals the first argument's rank.
_RANK_PRESERVING = frozenset(
    {
        "cumsum",
        "clip",
        "asarray",
        "array",
        "copy",
        "ascontiguousarray",
        "where",
        "repeat",
        "searchsorted",
        "take",
        "maximum",
        "minimum",
        "left_shift",
        "right_shift",
    }
)

_NUMPY_ROOTS = ("np", "numpy")


@dataclass(frozen=True)
class DegreeWitness:
    """An extracted degree plus the statement line that attains it."""

    degree: int
    line: int
    detail: str


def _np_func(call: ast.Call) -> str | None:
    parts: list[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in _NUMPY_ROOTS:
        return ".".join(reversed(parts))
    return None


def _is_constant_range(call: ast.Call) -> bool:
    """``range(...)`` with every argument a literal int constant."""
    if not (
        isinstance(call.func, ast.Name) and call.func.id == "range"
    ):
        return False
    return all(
        isinstance(arg, ast.Constant) and isinstance(arg.value, int)
        for arg in call.args
    )


class _DegreeExtractor:
    """ndim tracking + loop-depth walk over one function body."""

    def __init__(
        self,
        info: FunctionInfo,
        index: ProjectIndex,
        memo: dict[str, DegreeWitness],
        stack: set[str],
    ):
        self.info = info
        self.index = index
        self.memo = memo
        self.stack = stack
        self.module = index.modules.get(info.path)
        #: variable name -> known numpy rank (absent = not an array /
        #: unknown, treated as rank 0 so unknowns never inflate degree).
        self.ndim: dict[str, int] = {}
        self.best = DegreeWitness(0, info.node.lineno, "function body")

    def run(self) -> DegreeWitness:
        self._walk_block(self.info.node.body, 0)
        return self.best

    # -- bookkeeping ---------------------------------------------------
    def _record(self, degree: int, node: ast.AST, detail: str) -> None:
        if degree > self.best.degree:
            self.best = DegreeWitness(
                degree, getattr(node, "lineno", self.info.node.lineno),
                detail,
            )

    # -- rank abstraction ----------------------------------------------
    def _rank(self, node: ast.expr) -> int:
        if isinstance(node, ast.Name):
            return self.ndim.get(node.id, 0)
        if isinstance(node, ast.BinOp):
            return max(self._rank(node.left), self._rank(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._rank(node.operand)
        if isinstance(node, ast.Compare):
            rank = self._rank(node.left)
            for comparator in node.comparators:
                rank = max(rank, self._rank(comparator))
            return rank
        if isinstance(node, ast.IfExp):
            return max(self._rank(node.body), self._rank(node.orelse))
        if isinstance(node, ast.Call):
            return self._call_rank(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_rank(node)
        if isinstance(node, ast.Attribute):
            # ``arr.T`` and friends preserve rank; anything else unknown.
            if node.attr == "T":
                return self._rank(node.value)
            return 0
        return 0

    def _call_rank(self, call: ast.Call) -> int:
        np_name = _np_func(call)
        if np_name is not None:
            leaf = np_name.split(".")[-1]
            if leaf in _SHAPED_CONSTRUCTORS and call.args:
                shape = call.args[0]
                if isinstance(shape, ast.Tuple):
                    return len(shape.elts)
                return 1
            if np_name.endswith("_like") and call.args:
                return self._rank(call.args[0])
            if leaf in _RANK1_PRODUCERS:
                return 1
            if leaf == "ix_":
                return len(call.args)
            if np_name in ("maximum.accumulate", "minimum.accumulate",
                           "add.accumulate"):
                return self._rank(call.args[0]) if call.args else 1
            if leaf in _RANK_PRESERVING and call.args:
                return max(1, self._rank(call.args[0]))
            return 0
        func = call.func
        if isinstance(func, ast.Attribute):
            # Array methods preserve (or reduce) the receiver's rank.
            receiver = self._rank(func.value)
            if func.attr in ("sum", "max", "min", "argmax", "argmin",
                             "item", "tolist", "any", "all"):
                return 0
            if func.attr in ("astype", "copy", "clip", "cumsum",
                             "reshape", "ravel", "view"):
                return max(receiver, 1) if receiver else 0
            return 0
        return 0

    def _subscript_rank(self, node: ast.Subscript) -> int:
        base = self._rank(node.value)
        sl = node.slice
        if isinstance(sl, ast.Call) and _np_func(sl) == "ix_":
            return len(sl.args)
        if isinstance(sl, ast.Slice):
            return base
        if isinstance(sl, ast.Tuple):
            rank = 0
            for element in sl.elts:
                if isinstance(element, ast.Slice):
                    rank += 1
                else:
                    rank = max(rank, self._rank(element))
            return rank
        idx_rank = self._rank(sl)
        if idx_rank >= 1:
            return idx_rank  # gather takes the index's rank
        return max(base - 1, 0)

    # -- statement walk ------------------------------------------------
    def _walk_block(self, body: list[ast.stmt], depth: int) -> None:
        for stmt in body:
            self._walk(stmt, depth)

    def _walk(self, stmt: ast.stmt, depth: int) -> None:
        if isinstance(stmt, ast.For):
            iter_node = stmt.iter
            data_dependent = True
            if isinstance(iter_node, ast.Call) and _is_constant_range(
                iter_node
            ):
                data_dependent = False
            inner = depth + (1 if data_dependent else 0)
            if data_dependent:
                self._record(
                    inner, stmt,
                    f"loop over {ast.unparse(iter_node)}",
                )
            self._score_expr(iter_node, depth)
            if isinstance(stmt.target, ast.Name):
                self.ndim[stmt.target.id] = max(
                    self._rank(iter_node) - 1, 0
                )
            self._walk_block(stmt.body, inner)
            self._walk_block(stmt.orelse, depth)
            return
        if isinstance(stmt, ast.While):
            self._record(depth + 1, stmt, "while loop")
            self._score_expr(stmt.test, depth + 1)
            self._walk_block(stmt.body, depth + 1)
            self._walk_block(stmt.orelse, depth)
            return
        if isinstance(stmt, ast.If):
            self._score_expr(stmt.test, depth)
            self._walk_block(stmt.body, depth)
            self._walk_block(stmt.orelse, depth)
            return
        if isinstance(stmt, (ast.With, ast.Try)):
            if isinstance(stmt, ast.With):
                self._walk_block(stmt.body, depth)
            else:
                self._walk_block(stmt.body, depth)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, depth)
                self._walk_block(stmt.orelse, depth)
                self._walk_block(stmt.finalbody, depth)
            return
        if isinstance(stmt, ast.Assign):
            self._score_expr(stmt.value, depth)
            rank = self._rank(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.ndim[target.id] = rank
                elif isinstance(target, ast.Subscript):
                    self._score_expr(target, depth)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._score_expr(stmt.value, depth)
            if isinstance(stmt.target, ast.Name):
                self.ndim[stmt.target.id] = self._rank(stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._score_expr(stmt.value, depth)
            self._score_expr(stmt.target, depth)
            return
        if isinstance(stmt, ast.Expr):
            self._score_expr(stmt.value, depth)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._score_expr(stmt.value, depth)
            return

    def _score_expr(self, expr: ast.expr, depth: int) -> None:
        """Score every vector op and resolvable call inside *expr*."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._score_call(node, depth)
            elif isinstance(node, (ast.BinOp, ast.Subscript, ast.Compare)):
                rank = self._rank(node)
                if rank > 0:
                    self._record(
                        depth + rank, node,
                        f"rank-{rank} vector op "
                        f"'{ast.unparse(node)[:60]}'",
                    )

    def _score_call(self, call: ast.Call, depth: int) -> None:
        rank = self._call_rank(call)
        if rank > 0:
            self._record(
                depth + rank, call,
                f"rank-{rank} call '{ast.unparse(call)[:60]}'",
            )
        if self.module is None:
            return
        callee = self.index.resolve_call(
            call, self.module, self.info.class_name
        )
        if callee is None or callee.qualname == self.info.qualname:
            return
        witness = _extract(callee, self.index, self.memo, self.stack)
        if witness is not None and witness.degree > 0:
            self._record(
                depth + witness.degree, call,
                f"calls {callee.node.name}() (degree {witness.degree})",
            )


def _extract(
    info: FunctionInfo,
    index: ProjectIndex,
    memo: dict[str, DegreeWitness],
    stack: set[str],
) -> DegreeWitness | None:
    if info.qualname in memo:
        return memo[info.qualname]
    if info.qualname in stack:
        return None  # recursion: no degree claim either way
    stack.add(info.qualname)
    try:
        witness = _DegreeExtractor(info, index, memo, stack).run()
    finally:
        stack.discard(info.qualname)
    memo[info.qualname] = witness
    return witness


def extract_degree(
    info: FunctionInfo, index: ProjectIndex
) -> DegreeWitness:
    """The extracted loop-nest/vector-op degree of one function."""
    witness = _extract(info, index, {}, set())
    assert witness is not None  # stack is empty at the root
    return witness


# ----------------------------------------------------------------------
# Contract audit (COST001/COST002)
# ----------------------------------------------------------------------
def _find_registry_module(index: ProjectIndex):
    for info in index.modules.values():
        if info.name.endswith("runtime.registry") or info.path.replace(
            "\\", "/"
        ).endswith("runtime/registry.py"):
            return info
    return None


def _declaration_site(registry_module, key: str) -> tuple[str, int]:
    if registry_module is None:
        return ("<declarations>", 1)
    try:
        with open(registry_module.path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if f'"{key}"' in line or f"'{key}'" in line:
                    return (registry_module.path, lineno)
    except OSError:  # pragma: no cover - racing file removal
        pass
    return (registry_module.path, 1)


def _resolve_entry(
    index: ProjectIndex, entry: str
) -> FunctionInfo | None:
    """Resolve a contract's dotted entry against the analyzed tree.

    Exact qualname first, then dotted-suffix matching (the tree may be
    indexed under path-derived names in tests and temp dirs); ties break
    toward the longest matching suffix.
    """
    if entry in index.functions:
        return index.functions[entry]
    parts = entry.split(".")
    for start in range(1, len(parts)):
        suffix = ".".join(parts[start:])
        matches = [
            info
            for qualname, info in index.functions.items()
            if qualname == suffix or qualname.endswith("." + suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        if matches:
            return None  # ambiguous: refuse to guess
    return None


def analyze_costs(
    index: ProjectIndex, *, declarations=None
) -> list[Finding]:
    """Audit declared cost contracts against extracted kernel degrees.

    *declarations* overrides the registry's contracts (used by tests and
    fault seeds); by default the contracts are read from
    :mod:`repro.runtime.registry` **only when the registry module itself
    is part of the analyzed tree** — checking an unrelated snippet must
    not drag the shipped contracts in.
    """
    registry_module = _find_registry_module(index)
    engine_names: tuple[str, ...] = ()
    if declarations is None:
        if registry_module is None:
            return []
        try:
            from repro.runtime.registry import ENGINE_NAMES, kernel_costs
        except ImportError:  # pragma: no cover - package not importable
            return []
        declarations = kernel_costs()
        engine_names = ENGINE_NAMES
    findings: list[Finding] = []
    declared_keys = {contract.key for contract in declarations}
    for engine in engine_names:
        if f"engine:{engine}" not in declared_keys:
            path, line = _declaration_site(registry_module, "ENGINE_NAMES")
            findings.append(
                Finding(
                    "COST002", path, line, 0,
                    f"engine {engine!r} has no CostContract — the "
                    "planner's WorkModel prices it blind; declare one "
                    "with declare_cost()",
                )
            )
    memo: dict[str, DegreeWitness] = {}
    for contract in declarations:
        info = _resolve_entry(index, contract.entry)
        if info is None:
            path, line = _declaration_site(registry_module, contract.key)
            findings.append(
                Finding(
                    "COST002", path, line, 0,
                    f"cost contract {contract.key!r} names entry "
                    f"{contract.entry!r}, which does not resolve to a "
                    "unique function in the analyzed tree",
                )
            )
            continue
        witness = _extract(info, index, memo, set())
        if witness is None or witness.degree == contract.degree:
            continue
        findings.append(
            Finding(
                "COST001", info.path, info.node.lineno, 0,
                f"cost contract {contract.key!r} declares degree "
                f"{contract.degree} ({contract.polynomial}) but the "
                f"extracted degree of {info.node.name}() is "
                f"{witness.degree} — witness at line {witness.line}: "
                f"{witness.detail}",
            )
        )
    return findings
