"""Symbolic shape lattice for the numeric dataflow verifier.

Array extents are abstracted as **dims**:

* ``("const", n)`` — a statically known length;
* ``("affine", root, offset)`` — ``root + offset`` for a symbolic root
  (a scalar variable, a parameter, or the length of another array), so
  ``np.empty(n)`` and ``np.empty(n + 1)`` share a root and differ by a
  provable offset;
* ``TOP_DIM`` — unknown.

The SHAPE1xx rules only ever fire on **proven** incompatibilities:

* two known constants that differ (and neither is the broadcastable 1);
* the same symbolic root at different offsets — the off-by-one
  boundary-column class of bugs the batched engine's wide layout invites
  (``width = n_seg + total`` vs ``total``).

Everything else — distinct roots, any top — is silently compatible, so
analyzing code whose lengths the abstraction cannot relate (ragged
repeats, data-dependent masks) produces no noise.

The lattice also carries **side provenance** for the SHAPE101 memo-axis
rule: every abstract array remembers whether it derives from S1-side
data (``s1.*``, ``xs``/``k1s``) or S2-side data (``s2.*``, ``ys``/
``k2s``/``los``/``his``), because the memo table's axis contract is
``M[k1-side, k2-side]`` and a transposed ``np.ix_`` gather is invisible
to pure length reasoning (both axes are often the same length).
"""

from __future__ import annotations

__all__ = [
    "TOP_DIM",
    "const_dim",
    "affine_dim",
    "dim_offset",
    "join_dim",
    "broadcast_dim",
    "provably_incompatible",
    "describe_dim",
    "side_of_name",
]

#: Unknown extent.
TOP_DIM = ("top",)


def const_dim(n: int):
    """A statically known extent."""
    return ("const", int(n))


def affine_dim(root: str, offset: int = 0):
    """The symbolic extent ``root + offset``."""
    return ("affine", root, int(offset))


def dim_offset(dim, delta: int):
    """*dim* shifted by a known constant (``len + 1`` layouts)."""
    if dim[0] == "const":
        return ("const", dim[1] + delta)
    if dim[0] == "affine":
        return ("affine", dim[1], dim[2] + delta)
    return TOP_DIM


def join_dim(a, b):
    """Lattice join: equal dims survive, anything else widens to top."""
    return a if a == b else TOP_DIM


def broadcast_dim(a, b):
    """Result extent of elementwise ``a (op) b``.

    A known dim wins over top (if the operation runs at all, the result
    has the known extent); a broadcastable constant 1 yields the other
    side.  Provably incompatible pairs are the caller's SHAPE102 — the
    result here is still the non-1 side so analysis can continue.
    """
    if a == TOP_DIM:
        return b
    if b == TOP_DIM:
        return a
    if a == ("const", 1):
        return b
    if b == ("const", 1):
        return a
    return a if a == b else join_dim(a, b)


def provably_incompatible(a, b) -> bool:
    """Whether extents *a* and *b* can never match at runtime.

    Proven only for: differing constants (neither the broadcastable 1),
    a same-root affine pair at different offsets, or a known constant
    against an affine dim whose offset alone already exceeds it is *not*
    provable (the root is unknown) — so that case stays silent.
    """
    if a[0] == "const" and b[0] == "const":
        return a[1] != b[1] and a[1] != 1 and b[1] != 1
    if a[0] == "affine" and b[0] == "affine" and a[1] == b[1]:
        return a[2] != b[2]
    return False


def describe_dim(dim) -> str:
    """Human-readable form of a dim for finding messages."""
    if dim[0] == "const":
        return str(dim[1])
    if dim[0] == "affine":
        root, offset = dim[1], dim[2]
        if offset == 0:
            return root
        return f"{root}{offset:+d}"
    return "?"


# ----------------------------------------------------------------------
# Side provenance (S1 vs S2) for the memo-axis rule
# ----------------------------------------------------------------------

#: Name stems that seed side provenance by convention.  The kernel
#: signatures throughout the tree use ``1``-suffixed names for the S1
#: (row) side and ``2``-suffixed names for the S2 (column) side, plus the
#: ``xs``/``ys`` endpoint pair; ``los``/``his`` are S2 arc-index ranges.
_S1_NAMES = frozenset({"xs", "s1", "structure1"})
_S2_NAMES = frozenset({"ys", "s2", "structure2", "los", "his", "arcs2"})


def side_of_name(name: str) -> frozenset[str]:
    """Side provenance implied by an identifier, possibly empty."""
    base = name.lstrip("_")
    if base in _S1_NAMES:
        return frozenset({"s1"})
    if base in _S2_NAMES:
        return frozenset({"s2"})
    has1 = "1" in base
    has2 = "2" in base
    if has1 and not has2:
        return frozenset({"s1"})
    if has2 and not has1:
        return frozenset({"s2"})
    return frozenset()
