"""AST rules for the SPMD static pass.

Each rule is a module-level analysis over one parsed file; all of them
are deliberately *lexical* (no inter-procedural dataflow) and tuned so that
false positives are rare enough to handle with ``# noqa`` comments:

* **SPMD001** — a collective call (``barrier``/``bcast``/``allreduce``/
  ``Allreduce``/``allgather``/``gather``/``scatter``/``reduce``/
  ``allocate_shared``) lexically nested under an ``if``/``while`` whose
  test mentions a rank (``comm.rank``, ``self._rank``, a bare ``rank``).
  This is the MPI-Checker "collective in rank-dependent control flow"
  check: a rank that skips the collective deadlocks every peer.
* **SPMD002** — a ``send``/``isend`` whose tag resolves to a constant
  (literal, module constant, or class-attribute constant) with no
  ``recv``-family call in the same module matching it.  A receive with a
  tag the analysis cannot resolve matches everything (conservative).
* **SPMD003** — a subscript store into (or ``.store()`` on) a name
  tainted by ``allocate_shared``/``DenseMemoTable.wrap`` whose index is
  not derived from an owned-partition source (``partition.tasks_of``, a
  name containing ``owned``, a loop over / membership test against such a
  name).  Outside its partition a rank races the Allreduce window.
* **DTYPE101** (lexical form; formerly SPMD004) — an array created with
  an explicit sub-64-bit integer dtype flowing into a ``tabulate_slice``
  kernel or ``DenseMemoTable``: the segmented prefix-max lift in
  :mod:`repro.core.slices` offsets segment ``s`` by ``s * stride`` and
  provably overflows narrow dtypes under the declared input bounds.  The
  ``--dataflow`` pass proves the same rule interprocedurally with
  interval arithmetic; this lexical form stays on because it is cheap
  and runs per-module.
* **ARCH001** — direct construction of run-scoped machinery
  (communicators, backend launchers, ``Tracer``, shared-memory memo
  tables) outside :mod:`repro.runtime.context`, the layer that owns them.
  The defining substrate modules (``repro/mpi/*``, ``repro/obs/tracer.py``,
  ``repro/check/sanitizer.py``) are exempt; the context module itself
  carries the single sanctioned ``# noqa: ARCH001`` on its factory table.
"""

from __future__ import annotations

import ast
import os

from repro.check.findings import Finding

__all__ = ["analyze_module"]

COLLECTIVES = frozenset(
    {
        "barrier",
        "bcast",
        "allreduce",
        "Allreduce",
        "allgather",
        "gather",
        "scatter",
        "reduce",
        "allocate_shared",
    }
)

#: Receiver roots whose methods merely *look* like collectives
#: (``np.maximum.reduce``, ``functools.reduce``, ...).
_NON_COMM_ROOTS = frozenset(
    {"np", "numpy", "functools", "operator", "itertools", "math"}
)

_SEND_METHODS = {"send": 2, "isend": 2, "_send": 2}
_RECV_METHODS = {"recv": 1, "irecv": 1, "_recv": 1, "_try_recv": 1}

_NARROW_INT_DTYPES = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

_ARRAY_FACTORIES = frozenset(
    {"zeros", "empty", "full", "ones", "array", "asarray", "arange",
     "zeros_like", "empty_like", "full_like", "ones_like"}
)

_LIFT_SINKS = ("tabulate_slice", "tabulate_slices")


def _is_rank_name(name: str) -> bool:
    name = name.lstrip("_")
    return name == "rank" or name.endswith("_rank")


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_rank_name(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_rank_name(sub.attr):
            return True
    return False


def _receiver_root(node: ast.expr) -> str | None:
    """Leftmost name of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_collective_call(call: ast.Call) -> str | None:
    """The collective's method name, or None if *call* is not one."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in COLLECTIVES:
        return None
    if _receiver_root(func) in _NON_COMM_ROOTS:
        return None
    return func.attr


# ----------------------------------------------------------------------
# SPMD001 — collectives under rank-dependent control flow
# ----------------------------------------------------------------------
class _RankConditionalVisitor(ast.NodeVisitor):
    def __init__(self, findings: list[Finding], path: str):
        self._findings = findings
        self._path = path
        self._depth = 0

    def _visit_scoped(self, node: ast.AST) -> None:
        # A nested def runs in a context of its caller's choosing, not of
        # the lexically enclosing conditional — reset the depth.
        saved, self._depth = self._depth, 0
        self.generic_visit(node)
        self._depth = saved

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_Lambda = _visit_scoped
    visit_ClassDef = _visit_scoped

    def _visit_conditional(self, node: ast.If | ast.While | ast.IfExp) -> None:
        self.visit(node.test)
        branches = (
            (node.body, node.orelse)
            if not isinstance(node, ast.IfExp)
            else ([node.body], [node.orelse])
        )
        rank_dependent = _mentions_rank(node.test)
        if rank_dependent:
            self._depth += 1
        for branch in branches:
            for child in branch:
                self.visit(child)
        if rank_dependent:
            self._depth -= 1

    visit_If = _visit_conditional
    visit_While = _visit_conditional
    visit_IfExp = _visit_conditional

    def visit_Call(self, node: ast.Call) -> None:
        name = _is_collective_call(node)
        if name is not None and self._depth > 0:
            self._findings.append(
                Finding(
                    "SPMD001",
                    self._path,
                    node.lineno,
                    node.col_offset,
                    f"collective '{name}' under rank-dependent control "
                    "flow — a rank that takes the other branch deadlocks "
                    "every peer at this call",
                )
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# SPMD002 — send tags without a matching receive
# ----------------------------------------------------------------------
def _constant_env(tree: ast.Module) -> dict[str, int]:
    """Module- and class-level integer constant bindings.

    Delegates to the project indexer's scanner, which also folds
    ``AugAssign`` updates and tuple unpacking — the patterns the original
    folder silently widened to wildcard, suppressing real tag mismatches.
    """
    from repro.check.callgraph import _scan_constants

    env: dict[str, int] = {}
    _scan_constants(tree.body, env)
    return env


def _tag_node(call: ast.Call, positional_index: int) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "tag":
            return keyword.value
    if len(call.args) > positional_index:
        return call.args[positional_index]
    return None  # defaulted tag (0)


def _resolve_tag(node: ast.expr | None, env: dict[str, int]):
    """``("const", value)``, ``("expr", text)``, or ``("dynamic", None)``."""
    if node is None:
        return ("const", 0)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return ("const", node.value)
    if isinstance(node, ast.Name) and node.id in env:
        return ("const", env[node.id])
    if isinstance(node, ast.Attribute) and node.attr in env:
        return ("const", env[node.attr])
    # Arithmetic over resolvable pieces keeps a stable text key; anything
    # mentioning an unresolvable name is dynamic (matches everything on
    # the receive side, is skipped on the send side).
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in env:
            return ("dynamic", None)
        if isinstance(sub, ast.Call):
            return ("dynamic", None)
    return ("expr", ast.unparse(node))


def _check_tags(
    tree: ast.Module,
    path: str,
    findings: list[Finding],
    extra_constants: dict[str, int] | None = None,
) -> None:
    env = dict(extra_constants) if extra_constants else {}
    env.update(_constant_env(tree))
    sends: list[tuple[ast.Call, tuple]] = []
    recv_keys: set[tuple] = set()
    wildcard_recv = False
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _SEND_METHODS:
            key = _resolve_tag(_tag_node(node, _SEND_METHODS[func.attr]), env)
            sends.append((node, key))
        elif func.attr in _RECV_METHODS:
            key = _resolve_tag(_tag_node(node, _RECV_METHODS[func.attr]), env)
            if key[0] == "dynamic":
                wildcard_recv = True
            else:
                recv_keys.add(key)
    if wildcard_recv:
        return
    for call, key in sends:
        if key[0] != "const" or key in recv_keys:
            continue
        findings.append(
            Finding(
                "SPMD002",
                path,
                call.lineno,
                call.col_offset,
                f"send with tag {key[1]} has no matching receive tag in "
                "this module — the paired recv would block forever",
            )
        )


# ----------------------------------------------------------------------
# SPMD003 — shm-backed writes outside an owned-partition guard
# ----------------------------------------------------------------------
def _expr_names(node: ast.AST) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _has_shm_source(
    node: ast.AST, factories: frozenset[str] | set[str] = frozenset()
) -> bool:
    """Whether *node* produces an shm-backed handle.

    *factories* extends the lexical sources (``allocate_shared`` /
    ``DenseMemoTable.wrap``) with project-level helper functions the call
    graph proved to return shm handles, so a table obtained through
    ``make_table(comm, ...)`` in another function is still tracked.
    """
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if isinstance(sub.func, ast.Attribute):
            if sub.func.attr == "allocate_shared":
                return True
            if sub.func.attr == "wrap" and "DenseMemoTable" in ast.unparse(
                sub.func.value
            ):
                return True
            if sub.func.attr in factories:
                return True
        elif isinstance(sub.func, ast.Name) and sub.func.id in factories:
            return True
    return False


def _has_owned_source(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "owned" in sub.id:
            return True
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr == "tasks_of":
                return True
    return False


class _ShmWriteChecker:
    """Forward may-taint pass over one function (or the module body)."""

    def __init__(
        self,
        path: str,
        findings: list[Finding],
        factories: frozenset[str] = frozenset(),
    ):
        self._path = path
        self._findings = findings
        self._factories = factories
        self.shm: set[str] = set()
        self.owned: set[str] = set()

    def _owned_expr(self, node: ast.AST) -> bool:
        return bool(self.owned & _expr_names(node)) or _has_owned_source(node)

    def _shm_expr(self, node: ast.AST) -> bool:
        return bool(self.shm & _expr_names(node)) or _has_shm_source(
            node, self._factories
        )

    def _taint_targets(self, targets: list[ast.expr], value: ast.expr) -> None:
        shm = self._shm_expr(value)
        owned = self._owned_expr(value)
        for target in targets:
            names = (
                [target]
                if isinstance(target, ast.Name)
                else [e for e in ast.walk(target) if isinstance(e, ast.Name)]
            )
            for name in names:
                if not isinstance(name, ast.Name):
                    continue
                if shm:
                    self.shm.add(name.id)
                if owned or "owned" in name.id:
                    self.owned.add(name.id)

    def _check_store(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Subscript):
            return
        root = _receiver_root(target.value)
        if root is None or root not in self.shm:
            return
        if self._owned_expr(target.slice):
            return
        self._findings.append(
            Finding(
                "SPMD003",
                self._path,
                target.lineno,
                target.col_offset,
                f"write to shared-memory-backed array '{root}' with an "
                "index not derived from the owned partition — out-of-"
                "partition writes race the shm Allreduce window",
            )
        )

    def _check_store_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != "store":
            return
        root = (
            func.value.id if isinstance(func.value, ast.Name) else None
        )
        if root is None or root not in self.shm:
            return
        if any(self._owned_expr(arg) for arg in call.args):
            return
        self._findings.append(
            Finding(
                "SPMD003",
                self._path,
                call.lineno,
                call.col_offset,
                f"'{root}.store(...)' on a shared-memory-backed table with "
                "indices not derived from the owned partition",
            )
        )

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._taint_targets(stmt.targets, stmt.value)
            for target in stmt.targets:
                self._check_store(target)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._taint_targets([stmt.target], stmt.value)
            self._check_store(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self._check_store(stmt.target)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            self._check_store_call(stmt.value)
        elif isinstance(stmt, ast.For):
            if self._owned_expr(stmt.iter):
                self._taint_targets([stmt.target], stmt.iter)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            guard_name = self._membership_guard(stmt.test)
            added = guard_name is not None and guard_name not in self.owned
            if added:
                self.owned.add(guard_name)  # type: ignore[arg-type]
            self.run(stmt.body)
            if added:
                self.owned.discard(guard_name)  # type: ignore[arg-type]
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _ShmWriteChecker(self._path, self._findings,
                                      self._factories)
            nested.owned = {
                arg.arg
                for arg in stmt.args.args + stmt.args.kwonlyargs
                if "owned" in arg.arg
            }
            nested.run(stmt.body)

    @staticmethod
    def _membership_guard(test: ast.expr) -> str | None:
        """``if b in owned_set:`` -> ``"b"`` (taint b inside the body)."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.In)
            and isinstance(test.left, ast.Name)
            and _has_owned_source(test.comparators[0])
        ):
            return test.left.id
        return None


def _check_shm_writes(
    tree: ast.Module,
    path: str,
    findings: list[Finding],
    factories: frozenset[str] = frozenset(),
) -> None:
    checker = _ShmWriteChecker(path, findings, factories)
    checker.run(tree.body)


# ----------------------------------------------------------------------
# DTYPE101 (formerly SPMD004) — narrow dtypes into lift-based kernels
# ----------------------------------------------------------------------
def _narrow_dtype_of(call: ast.Call) -> str | None:
    """The narrow-int dtype name of an array-factory call, if any."""
    func = call.func
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else None
    )
    if name not in _ARRAY_FACTORIES and name != "astype":
        return None
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return _dtype_text(keyword.value)
    if name == "astype" and call.args:
        return _dtype_text(call.args[0])
    return None


def _dtype_text(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.Attribute):
        text = node.attr
    elif isinstance(node, ast.Name):
        text = node.id
    else:
        return None
    return text if text in _NARROW_INT_DTYPES else None


def _is_lift_sink(call: ast.Call) -> bool:
    func = call.func
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else ""
    )
    if any(name.startswith(prefix) for prefix in _LIFT_SINKS):
        return True
    if name == "wrap" and isinstance(func, ast.Attribute):
        return "DenseMemoTable" in ast.unparse(func.value)
    return name == "DenseMemoTable"


def _check_dtype_smells(
    tree: ast.Module, path: str, findings: list[Finding]
) -> None:
    narrow: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if isinstance(node.value, ast.Call):
            dtype = _narrow_dtype_of(node.value)
            if dtype is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        narrow[target.id] = dtype
        elif isinstance(node.value, ast.Name) and node.value.id in narrow:
            # table = memo — alias propagation.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    narrow[target.id] = narrow[node.value.id]
        elif (
            isinstance(node.value, ast.Tuple)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and len(node.targets[0].elts) == len(node.value.elts)
        ):
            # memo, aux = np.zeros(..., dtype=np.int16), np.zeros(...)
            # — tuple-unpacked intermediates used to slip through.
            for target, value in zip(node.targets[0].elts, node.value.elts):
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Call):
                    dtype = _narrow_dtype_of(value)
                    if dtype is not None:
                        narrow[target.id] = dtype
                elif isinstance(value, ast.Name) and value.id in narrow:
                    narrow[target.id] = narrow[value.id]
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _is_lift_sink(node)):
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for arg in arguments:
            dtype = None
            if isinstance(arg, ast.Name) and arg.id in narrow:
                dtype = narrow[arg.id]
            elif isinstance(arg, ast.Call):
                dtype = _narrow_dtype_of(arg)
            if dtype is not None:
                findings.append(
                    Finding(
                        "DTYPE101",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"array with dtype {dtype} flows into a lift-based "
                        "kernel — the segmented prefix-max lift (seg_id * "
                        "stride, core/slices.py) provably overflows it "
                        "under the declared input bounds; use int64 "
                        "(formerly SPMD004)",
                    )
                )
                break
        # DenseMemoTable(n, m, dtype=np.int32) — narrow dtype keyword.
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                dtype = _dtype_text(keyword.value)
                if dtype is not None:
                    findings.append(
                        Finding(
                            "DTYPE101",
                            path,
                            node.lineno,
                            node.col_offset,
                            f"memo table created with dtype {dtype} — PRNA "
                            "and the batched kernels assume an int64-safe "
                            "lift; use int64 or the per-slice engines "
                            "(formerly SPMD004)",
                        )
                    )


# ----------------------------------------------------------------------
# ARCH001 — runtime machinery constructed outside repro.runtime.context
# ----------------------------------------------------------------------
#: Factories whose *call* marks a construction the execution context owns.
_ARCH_FACTORIES = frozenset(
    {
        "Tracer",
        "SanitizedCommunicator",
        "SelfCommunicator",
        "ThreadCommunicator",
        "ProcessCommunicator",
        "run_threaded",
        "run_multiprocess",
    }
)

#: Modules allowed to construct freely: the substrate that *defines* the
#: machinery.  ``repro/runtime/context.py`` is deliberately NOT here — it
#: funnels every construction through one ``# noqa: ARCH001`` line.
_ARCH_EXEMPT_SUFFIXES = (
    "repro/obs/tracer.py",
    "repro/check/sanitizer.py",
)


def _arch_exempt(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(suffix) for suffix in _ARCH_EXEMPT_SUFFIXES):
        return True
    return "/mpi/" in norm


def _arch_flagged_name(call: ast.Call) -> str | None:
    func = call.func
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else None
    )
    if name in _ARCH_FACTORIES:
        return name
    if name == "allocate_shared" and isinstance(func, ast.Attribute):
        return "allocate_shared"
    if (
        name == "wrap"
        and isinstance(func, ast.Attribute)
        and "DenseMemoTable" in ast.unparse(func.value)
    ):
        return "DenseMemoTable.wrap"
    return None


def _check_architecture(
    tree: ast.Module, path: str, findings: list[Finding]
) -> None:
    if _arch_exempt(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        flagged = _arch_flagged_name(node)
        if flagged is None:
            continue
        findings.append(
            Finding(
                "ARCH001",
                path,
                node.lineno,
                node.col_offset,
                f"direct construction of runtime machinery ({flagged!r}) "
                "outside repro.runtime.context — route through "
                "ExecutionContext (or its sanitize_communicator/"
                "shared_memo helpers) so plans, stats and sanitizers "
                "stay consistent",
            )
        )


# ----------------------------------------------------------------------
def analyze_module(
    tree: ast.Module,
    path: str,
    *,
    extra_constants: dict[str, int] | None = None,
    shm_factories: frozenset[str] = frozenset(),
) -> list[Finding]:
    """Run every per-module static rule over one parsed module.

    *extra_constants* widens SPMD002's tag folder with constants imported
    from other analyzed modules; *shm_factories* widens SPMD003's taint
    sources with helper functions the call graph proved to return shm
    handles.  Both default to the module-local behaviour so single-file
    analysis (tests, snippets) is unchanged.
    """
    findings: list[Finding] = []
    _RankConditionalVisitor(findings, path).visit(tree)
    _check_tags(tree, path, findings, extra_constants)
    _check_shm_writes(tree, path, findings, shm_factories)
    _check_dtype_smells(tree, path, findings)
    _check_architecture(tree, path, findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
