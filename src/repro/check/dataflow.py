"""Numeric dataflow verifier: interval/shape/dtype abstract interpretation.

The second interprocedural pass of ``repro.check`` (sibling of
:mod:`repro.check.protocol`, enabled with ``--dataflow``).  Where the
protocol pass proves communication schedules agree, this pass proves
numeric facts about the **kernels**: it interprets each target function
over abstract values combining

* the integer interval lattice (:mod:`repro.check.intervals`) for value
  ranges,
* the symbolic shape lattice (:mod:`repro.check.shapes`) for numpy array
  extents, and
* S1/S2 **side provenance** for the memo table's axis contract.

Rule families (all proofs, never heuristics — every flag is backed by a
known bound, a known constant extent, or a same-root offset mismatch):

* **DTYPE101** — an array of sub-64-bit integer dtype reaches a
  lift/pack kernel (``tabulate_slice*``, ``_segmented_tabulate``,
  ``DenseMemoTable``).  Under the input bounds declared in
  :data:`repro.runtime.registry.INPUT_BOUNDS` the segmented prefix-max
  lift provably exceeds every narrow dtype's range
  (:func:`repro.check.intervals.lift_bound`); this is the semantic
  replacement for the lexical SPMD004 smell.
* **DTYPE102** — a shifted/packed value whose interval provably exceeds
  the word width of the integer array it is stored into.
* **DTYPE103** — a provably lossy narrowing cast or store (``astype``
  or a store into a narrow array whose value range exceeds it).
* **SHAPE101** — a memo gather ``M[np.ix_(rows, cols)]`` whose row index
  is S2-derived or whose column index is S1-derived (transposed axes;
  invisible to length reasoning because both axes often agree in size).
* **SHAPE102** — elementwise/broadcast/``out=`` operands with provably
  incompatible extents (constant mismatch, or the same symbolic root at
  different offsets — the boundary-column off-by-one class).
* **SHAPE103** — a gather/scatter index map provably mismatched with its
  source or destination (``dest[idx] = src``, ``np.take(..., out=)``).

Analysis targets: every function in the numeric substrate modules
(``core/slices``, ``core/memo``, ``repro/mpi/*``), any function whose
name marks it as a kernel by convention (``tabulate_*``, ``pack_*``,
``lift_*``, ``_segmented_*``), plus any entry named by a registered
:class:`~repro.runtime.registry.CostContract`.  Everything the
abstraction cannot relate stays silent — top never proves anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.check.findings import Finding
from repro.check.intervals import (
    NARROW_INT_DTYPES,
    TOP,
    Interval,
    const,
    dtype_range,
    lift_bound,
)
from repro.check.shapes import (
    TOP_DIM,
    affine_dim,
    broadcast_dim,
    const_dim,
    describe_dim,
    dim_offset,
    join_dim,
    provably_incompatible,
    side_of_name,
)

__all__ = ["analyze_dataflow", "AValue"]

#: Path fragments marking the numeric substrate (always analyzed).
_SUBSTRATE_PATH_PARTS = ("core/slices", "core/memo", "/mpi/")

#: Function-name prefixes marking kernels by convention.
_TARGET_NAME_PREFIXES = ("tabulate_", "pack_", "lift_", "_segmented_")

#: Callees that feed the segmented prefix-max lift (DTYPE101 sinks).
_LIFT_SINK_PREFIXES = ("tabulate_slice", "tabulate_slices",
                      "_segmented_tabulate")

#: Name fragments identifying the memo table for the SHAPE101 axis rule.
_MEMO_NAME_PARTS = ("memo", "values")

_NUMPY_ROOTS = ("np", "numpy")

#: numpy calls that produce a fresh 1-D array whatever their input ranks.
_FLAT_1D_FUNCS = frozenset(
    {"concatenate", "flatnonzero", "nonzero", "repeat", "ravel"}
)


def _input_bounds() -> dict[str, int]:
    try:
        from repro.runtime.registry import INPUT_BOUNDS

        return dict(INPUT_BOUNDS)
    except Exception:  # pragma: no cover - registry not importable
        return {"max_length": 1 << 20, "max_arcs": 1 << 19,
                "max_value": 1 << 19}


@dataclass(frozen=True)
class AValue:
    """One abstract value: shape x dtype x interval x side provenance.

    ``shape`` is ``None`` (unknown rank), ``()`` (scalar), or a tuple of
    dims from :mod:`repro.check.shapes`.  ``sym`` is the symbolic value
    of a *scalar* (a dim triple), linking ``n = len(xs)`` to the extent
    of arrays later allocated with ``n``.  ``packed`` marks values
    derived from a left shift, which routes narrow-store proofs to
    DTYPE102 (word width) instead of DTYPE103 (lossy cast).
    """

    shape: tuple | None = None
    dtype: str | None = None
    ival: Interval = TOP
    sides: frozenset = frozenset()
    sym: tuple | None = None
    packed: bool = False

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()

    def dim(self):
        """First-axis extent when known 1-D, else top."""
        if self.shape and len(self.shape) >= 1:
            return self.shape[0]
        return TOP_DIM


_UNKNOWN = AValue()


def _scalar(ival: Interval = TOP, sym=None, sides=frozenset()) -> AValue:
    return AValue(shape=(), ival=ival, sym=sym, sides=sides)


def _join_values(a: AValue, b: AValue) -> AValue:
    if a == b:
        return a
    if a.shape is not None and b.shape is not None and len(a.shape) == len(
        b.shape
    ):
        shape: tuple | None = tuple(
            join_dim(x, y) for x, y in zip(a.shape, b.shape)
        )
    else:
        shape = None
    return AValue(
        shape=shape,
        dtype=a.dtype if a.dtype == b.dtype else None,
        ival=a.ival.join(b.ival),
        sides=a.sides | b.sides,
        sym=a.sym if a.sym == b.sym else None,
        packed=a.packed or b.packed,
    )


def _dtype_name(node: ast.expr) -> str | None:
    """The dtype name an AST expression denotes, if recognizable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.Attribute):
        text = node.attr
    elif isinstance(node, ast.Name):
        text = node.id
    else:
        return None
    return text if dtype_range(text) is not None else None


def _call_name(call: ast.Call) -> str:
    """Leaf name of the callee (``np.take`` -> ``take``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _np_func(call: ast.Call) -> str | None:
    """Dotted numpy function name, or None for non-numpy callees.

    ``np.take`` -> ``"take"``; ``np.maximum.accumulate`` ->
    ``"maximum.accumulate"``.
    """
    parts: list[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in _NUMPY_ROOTS:
        return ".".join(reversed(parts))
    return None


def _is_lift_sink(call: ast.Call) -> str | None:
    name = _call_name(call)
    if any(name.startswith(prefix) for prefix in _LIFT_SINK_PREFIXES):
        return name
    if name == "DenseMemoTable":
        return name
    if name == "wrap" and isinstance(call.func, ast.Attribute):
        if "DenseMemoTable" in ast.unparse(call.func.value):
            return "DenseMemoTable.wrap"
    return None


def _is_memo_name(node: ast.expr) -> bool:
    """Whether *node* names the memo table (for the axis contract)."""
    names: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    for name in names:
        lower = name.lower()
        if name == "M" or any(part in lower for part in _MEMO_NAME_PARTS):
            return True
    return False


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


class _FunctionInterpreter:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        info,
        path: str,
        findings: list[Finding],
        bounds: dict[str, int],
        constants: dict[str, int] | None = None,
    ):
        self.info = info
        self.path = path
        self.findings = findings
        self.bounds = bounds
        self.env: dict[str, AValue] = {}
        self._fresh = 0
        for name, value in (constants or {}).items():
            self.env[name] = _scalar(const(value), sym=const_dim(value))
        node = info.node
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            self.env[arg.arg] = AValue(
                sides=side_of_name(arg.arg), sym=affine_dim(arg.arg)
            )

    # -- plumbing ------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), message)
        )

    def _fresh_root(self, name: str) -> str:
        self._fresh += 1
        return f"{name}#{self._fresh}"

    def run(self) -> None:
        self._exec_block(self.info.node.body)

    # -- statements ----------------------------------------------------
    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, stmt.value, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._exec_branches(stmt.test, stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._exec_branches(stmt.test, stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
            self._merge_env(before)
        # Nested defs, classes, imports etc. carry no numeric dataflow.

    def _exec_branches(
        self, test: ast.expr, body: list[ast.stmt], orelse: list[ast.stmt]
    ) -> None:
        self._eval(test)
        before = dict(self.env)
        self._exec_block(body)
        after_body = self.env
        self.env = dict(before)
        self._exec_block(orelse)
        after_else = self.env
        merged: dict[str, AValue] = {}
        for name in set(after_body) | set(after_else):
            a = after_body.get(name)
            b = after_else.get(name)
            if a is None:
                merged[name] = b  # type: ignore[assignment]
            elif b is None:
                merged[name] = a
            else:
                merged[name] = a if a == b else _join_values(a, b)
        self.env = merged

    def _merge_env(self, before: dict[str, AValue]) -> None:
        for name, value in before.items():
            current = self.env.get(name)
            if current is not None and current != value:
                self.env[name] = _join_values(current, value)

    def _exec_for(self, stmt: ast.For) -> None:
        before = dict(self.env)
        element = self._loop_element(stmt.iter)
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = element
        elif isinstance(stmt.target, ast.Tuple):
            for elt in stmt.target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _UNKNOWN
        self._exec_block(stmt.body)
        self._exec_block(stmt.orelse)
        self._merge_env(before)

    def _loop_element(self, iterable: ast.expr) -> AValue:
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
        ):
            args = [self._eval(arg) for arg in iterable.args]
            if len(args) == 1:
                lo: Interval = const(0)
                hi = args[0].ival
            elif len(args) >= 2:
                lo = args[0].ival
                hi = args[1].ival
            else:
                return _scalar()
            upper = None if hi.hi is None else hi.hi - 1
            return _scalar(Interval(lo.lo, upper))
        src = self._eval(iterable)
        return _scalar(src.ival, sides=src.sides)

    # -- assignments and stores ----------------------------------------
    def _assign(
        self, target: ast.expr, value_node: ast.expr, value: AValue
    ) -> None:
        if isinstance(target, ast.Name):
            if value.shape == () and value.sym is None:
                value = replace(
                    value, sym=affine_dim(self._fresh_root(target.id))
                )
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple):
            if isinstance(value_node, ast.Tuple) and len(
                value_node.elts
            ) == len(target.elts):
                for elt_target, elt_value in zip(
                    target.elts, value_node.elts
                ):
                    self._assign(
                        elt_target, elt_value, self._eval(elt_value)
                    )
            else:
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = _UNKNOWN
        elif isinstance(target, ast.Subscript):
            self._exec_store(target, value)
        elif isinstance(target, ast.Starred) and isinstance(
            target.value, ast.Name
        ):
            self.env[target.value.id] = _UNKNOWN

    def _exec_store(self, target: ast.Subscript, value: AValue) -> None:
        base = self._eval(target.value)
        self._check_narrow_store(base, value, target,
                                 ast.unparse(target.value))
        idx_node = target.slice
        if not isinstance(idx_node, (ast.Slice, ast.Tuple)):
            idx = self._eval(idx_node)
            if (
                idx.shape is not None
                and len(idx.shape) == 1
                and value.shape is not None
                and len(value.shape) == 1
                and provably_incompatible(idx.shape[0], value.shape[0])
            ):
                self._flag(
                    "SHAPE103", target,
                    f"scatter '{ast.unparse(target)} = ...' writes "
                    f"{describe_dim(value.shape[0])} values through "
                    f"{describe_dim(idx.shape[0])} indices — the index map "
                    "and the source provably differ in length",
                )
            if (
                idx.is_scalar
                and base.shape is not None
                and len(base.shape) == 2
                and value.shape is not None
                and len(value.shape) == 1
                and provably_incompatible(base.shape[1], value.shape[0])
            ):
                self._flag(
                    "SHAPE102", target,
                    f"row store '{ast.unparse(target)} = ...' writes a "
                    f"length-{describe_dim(value.shape[0])} array into rows "
                    f"of length {describe_dim(base.shape[1])} — provably "
                    "incompatible extents",
                )
            # Scatter taints the destination with the source's provenance
            # and range (the SHAPE101 side tracking depends on this).
            if isinstance(target.value, ast.Name):
                root = target.value.id
                if root in self.env:
                    old = self.env[root]
                    self.env[root] = replace(
                        old,
                        ival=old.ival.join(value.ival),
                        sides=old.sides | value.sides | idx.sides,
                        packed=old.packed or value.packed,
                    )
        elif isinstance(target.value, ast.Name):
            root = target.value.id
            if root in self.env:
                old = self.env[root]
                self.env[root] = replace(
                    old,
                    ival=old.ival.join(value.ival),
                    sides=old.sides | value.sides,
                    packed=old.packed or value.packed,
                )

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        value = self._eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            current = self.env.get(name, _UNKNOWN)
            result = self._binop_values(current, value, stmt.op, stmt)
            self._check_narrow_store(current, result, stmt, name)
            self.env[name] = replace(
                result,
                shape=result.shape if result.shape is not None
                else current.shape,
                dtype=current.dtype,
            )
        elif isinstance(stmt.target, ast.Subscript):
            base = self._eval(stmt.target.value)
            result = self._binop_values(base, value, stmt.op, stmt)
            self._exec_store(stmt.target, result)

    def _check_narrow_store(
        self, dest: AValue, value: AValue, node: ast.AST, what: str
    ) -> None:
        if dest.dtype is None or dest.dtype not in NARROW_INT_DTYPES:
            return
        rng = dtype_range(dest.dtype)
        if rng is None or not value.ival.proven_exceeds(rng):
            return
        lo = "-inf" if value.ival.lo is None else str(value.ival.lo)
        hi = "+inf" if value.ival.hi is None else str(value.ival.hi)
        if value.packed:
            self._flag(
                "DTYPE102", node,
                f"packed value with range [{lo}, {hi}] stored into "
                f"{dest.dtype} array '{what}' — the shifted bits provably "
                f"exceed the {dest.dtype} word width "
                f"[{rng.lo}, {rng.hi}]; widen the table dtype",
            )
        else:
            self._flag(
                "DTYPE103", node,
                f"store into {dest.dtype} array '{what}' with value range "
                f"[{lo}, {hi}] — provably exceeds the {dest.dtype} range "
                f"[{rng.lo}, {rng.hi}] (lossy narrowing)",
            )

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr) -> AValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _scalar(Interval(0, 1))
            if isinstance(node.value, int):
                return _scalar(const(node.value), sym=const_dim(node.value))
            return _scalar()
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return AValue(sides=side_of_name(node.id),
                          sym=affine_dim(node.id))
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            return AValue(
                sides=base.sides | side_of_name(node.attr),
                sym=affine_dim(ast.unparse(node)),
            )
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._binop_values(left, right, node.op, node)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand)
            if isinstance(node.op, ast.USub):
                return replace(operand, ival=operand.ival.neg(), sym=None)
            return replace(operand, ival=TOP, sym=None)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _join_values(self._eval(node.body),
                                self._eval(node.orelse))
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return _scalar(Interval(0, 1))
        if isinstance(node, ast.BoolOp):
            values = [self._eval(value) for value in node.values]
            result = values[0]
            for value in values[1:]:
                result = _join_values(result, value)
            return result
        if isinstance(node, (ast.List, ast.Tuple)):
            elements = [self._eval(elt) for elt in node.elts]
            ival = TOP
            sides: frozenset = frozenset()
            known = [e for e in elements if not e.ival.is_top]
            if known and len(known) == len(elements):
                ival = known[0].ival
                for e in known[1:]:
                    ival = ival.join(e.ival)
            for e in elements:
                sides = sides | e.sides
            if all(e.is_scalar for e in elements):
                return AValue(shape=(const_dim(len(elements)),),
                              ival=ival, sides=sides)
            return AValue(ival=ival, sides=sides)
        return _UNKNOWN

    # -- operators -----------------------------------------------------
    def _binop_values(
        self, left: AValue, right: AValue, op: ast.operator, node: ast.AST
    ) -> AValue:
        shape = self._broadcast_shapes(left, right, node)
        ival, packed = self._binop_ival(left, right, op)
        sym = None
        if shape == () or shape is None:
            sym = self._binop_sym(left, right, op)
        return AValue(
            shape=shape,
            dtype=left.dtype if left.dtype == right.dtype else None,
            ival=ival,
            sides=left.sides | right.sides,
            sym=sym,
            packed=packed or left.packed or right.packed,
        )

    def _binop_ival(
        self, left: AValue, right: AValue, op: ast.operator
    ) -> tuple[Interval, bool]:
        a, b = left.ival, right.ival
        if isinstance(op, ast.Add):
            return a.add(b), False
        if isinstance(op, ast.Sub):
            return a.sub(b), False
        if isinstance(op, ast.Mult):
            return a.mul(b), False
        if isinstance(op, ast.LShift):
            return a.lshift(b), True
        if isinstance(op, ast.BitOr):
            # For non-negative operands, a | b <= a + b and >= max(lo).
            if (
                a.lo is not None and a.lo >= 0 and b.lo is not None
                and b.lo >= 0 and a.hi is not None and b.hi is not None
            ):
                return Interval(max(a.lo, b.lo), a.hi + b.hi), False
            return TOP, False
        if isinstance(op, ast.Mod):
            if b.hi is not None and b.lo is not None and b.lo > 0:
                return Interval(0, b.hi - 1), False
            return TOP, False
        if isinstance(op, ast.FloorDiv):
            if (
                a.lo is not None and a.hi is not None and b.lo is not None
                and b.hi is not None and b.lo > 0
            ):
                return Interval(a.lo // b.hi if a.lo >= 0 else a.lo // b.lo,
                                a.hi // b.lo), False
            return TOP, False
        return TOP, False

    @staticmethod
    def _binop_sym(left: AValue, right: AValue, op: ast.operator):
        if left.sym is None or right.sym is None:
            return None
        if isinstance(op, ast.Add):
            if right.sym[0] == "const":
                return dim_offset(left.sym, right.sym[1])
            if left.sym[0] == "const":
                return dim_offset(right.sym, left.sym[1])
        if isinstance(op, ast.Sub) and right.sym[0] == "const":
            return dim_offset(left.sym, -right.sym[1])
        if (
            left.sym[0] == "const"
            and right.sym[0] == "const"
        ):
            a, b = left.sym[1], right.sym[1]
            if isinstance(op, ast.Mult):
                return const_dim(a * b)
            if isinstance(op, ast.FloorDiv) and b != 0:
                return const_dim(a // b)
        return None

    def _broadcast_shapes(
        self, left: AValue, right: AValue, node: ast.AST
    ) -> tuple | None:
        a, b = left.shape, right.shape
        if a == () and b == ():
            return ()
        if a is None and b is None:
            return None
        if a is None:
            return b
        if b is None:
            return a
        if a == ():
            return b
        if b == ():
            return a
        # Trailing-axis alignment, numpy broadcasting.
        out: list = []
        for axis in range(1, max(len(a), len(b)) + 1):
            da = a[-axis] if axis <= len(a) else const_dim(1)
            db = b[-axis] if axis <= len(b) else const_dim(1)
            if provably_incompatible(da, db):
                self._flag(
                    "SHAPE102", node,
                    f"elementwise operands with provably incompatible "
                    f"extents {describe_dim(da)} vs {describe_dim(db)} "
                    f"in '{ast.unparse(node) if isinstance(node, ast.expr) else 'augmented assignment'}'",
                )
            out.append(broadcast_dim(da, db))
        return tuple(reversed(out))

    # -- calls ---------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> AValue:
        sink = _is_lift_sink(call)
        if sink is not None:
            self._check_lift_sink(call, sink)
        np_name = _np_func(call)
        if np_name is not None:
            return self._eval_np_call(call, np_name)
        func = call.func
        if isinstance(func, ast.Name):
            return self._eval_builtin(call, func.id)
        if isinstance(func, ast.Attribute) and not isinstance(
            func.value, ast.Name
        ) or isinstance(func, ast.Attribute):
            return self._eval_method(call, func)
        args = [self._eval(arg) for arg in call.args]
        sides: frozenset = frozenset()
        for arg in args:
            sides = sides | arg.sides
        return AValue(sides=sides)

    def _check_lift_sink(self, call: ast.Call, sink: str) -> None:
        bound = lift_bound(self.bounds)
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for arg in arguments:
            value = self._eval(arg)
            if value.dtype in NARROW_INT_DTYPES:
                rng = dtype_range(value.dtype)
                self._flag(
                    "DTYPE101", call,
                    f"array with dtype {value.dtype} reaches lift kernel "
                    f"'{sink}' — under the registry's declared input "
                    f"bounds the segmented prefix-max lift reaches "
                    f"{bound} (~2^{bound.bit_length()}), beyond "
                    f"{value.dtype}'s maximum {rng.hi if rng else '?'}; "
                    "use int64 (semantic successor of SPMD004)",
                )
                return
        dtype_kw = _kwarg(call, "dtype")
        if dtype_kw is not None:
            name = _dtype_name(dtype_kw)
            if name in NARROW_INT_DTYPES:
                rng = dtype_range(name)
                self._flag(
                    "DTYPE101", call,
                    f"memo table created with dtype {name} — the lift "
                    f"provably reaches {bound} under declared input "
                    f"bounds, beyond {name}'s maximum "
                    f"{rng.hi if rng else '?'}; use int64",
                )

    def _eval_np_call(self, call: ast.Call, name: str) -> AValue:
        args = [self._eval(arg) for arg in call.args]
        sides: frozenset = frozenset()
        for arg in args:
            sides = sides | arg.sides
        dtype_node = _kwarg(call, "dtype")
        dtype = _dtype_name(dtype_node) if dtype_node is not None else None

        if name in ("zeros", "empty", "ones", "full") and call.args:
            shape = self._shape_from_arg(call.args[0])
            if name == "zeros":
                ival: Interval = const(0)
            elif name == "ones":
                ival = const(1)
            elif name == "full" and len(args) >= 2:
                ival = args[1].ival
            else:
                ival = TOP
            return AValue(shape=shape, dtype=dtype, ival=ival, sides=sides)
        if name.endswith("_like") and args:
            base = args[0]
            ival = const(0) if name == "zeros_like" else (
                const(1) if name == "ones_like" else TOP
            )
            return AValue(shape=base.shape, dtype=dtype or base.dtype,
                          ival=ival, sides=base.sides)
        if name == "arange":
            if len(call.args) == 1:
                size = self._eval(call.args[0])
                dim = size.sym if size.sym is not None else TOP_DIM
                upper = None if size.ival.hi is None else size.ival.hi - 1
                return AValue(shape=(dim,), dtype=dtype,
                              ival=Interval(0, upper), sides=sides)
            lo = args[0].ival if args else TOP
            hi = args[1].ival if len(args) > 1 else TOP
            upper = None if hi.hi is None else hi.hi - 1
            return AValue(shape=(TOP_DIM,), dtype=dtype,
                          ival=Interval(lo.lo, upper), sides=sides)
        if name in ("asarray", "array") and args:
            base = args[0]
            result = replace(base, dtype=dtype or base.dtype)
            if dtype is not None:
                self._check_cast(base, dtype, call)
            return result
        if name == "searchsorted" and len(args) >= 2:
            haystack, needles = args[0], args[1]
            hi = None
            dim = haystack.dim()
            if dim[0] == "const":
                hi = dim[1]
            return AValue(shape=needles.shape, ival=Interval(0, hi),
                          sides=sides)
        if name == "repeat" and len(args) >= 2:
            base, reps = args[0], args[1]
            shape: tuple | None = (TOP_DIM,)
            if (
                reps.is_scalar and reps.sym is not None
                and reps.sym[0] == "const" and base.shape is not None
                and len(base.shape) == 1 and base.shape[0][0] == "const"
            ):
                shape = (const_dim(base.shape[0][1] * reps.sym[1]),)
            return AValue(shape=shape, dtype=base.dtype, ival=base.ival,
                          sides=sides)
        if name in _FLAT_1D_FUNCS:
            ival = args[0].ival if args else TOP
            return AValue(shape=(TOP_DIM,), ival=ival, sides=sides)
        if name == "cumsum" and args:
            return replace(args[0], ival=self._cumulative_ival(args[0]),
                           sym=None)
        if name in ("maximum", "minimum") and len(args) >= 2:
            result = AValue(
                shape=self._broadcast_shapes(args[0], args[1], call),
                dtype=args[0].dtype if args[0].dtype == args[1].dtype
                else None,
                ival=args[0].ival.join(args[1].ival),
                sides=sides,
            )
            self._check_out(call, result, "SHAPE102")
            return result
        if name in ("maximum.accumulate", "minimum.accumulate") and args:
            result = replace(args[0], sym=None)
            self._check_out(call, result, "SHAPE102")
            return result
        if name == "take" and len(args) >= 2:
            base, idx = args[0], args[1]
            result = AValue(shape=idx.shape, dtype=base.dtype,
                            ival=base.ival, sides=sides)
            self._check_out(call, result, "SHAPE103")
            return result
        if name == "clip" and args:
            return replace(args[0], sides=sides, sym=None)
        if name == "left_shift" and len(args) >= 2:
            ival = args[0].ival.lshift(args[1].ival)
            result = AValue(
                shape=self._broadcast_shapes(args[0], args[1], call),
                ival=ival, sides=sides, packed=True,
            )
            self._check_out(call, result, "SHAPE102")
            return result
        if name == "ix_":
            # Only meaningful inside a Subscript; handled there.
            return AValue(sides=sides)
        return AValue(sides=sides, ival=TOP)

    def _check_out(self, call: ast.Call, result: AValue, rule: str) -> None:
        out_node = _kwarg(call, "out")
        if out_node is None:
            return
        out = self._eval(out_node)
        if (
            out.shape is not None and result.shape is not None
            and len(out.shape) == 1 and len(result.shape) == 1
            and provably_incompatible(out.shape[0], result.shape[0])
        ):
            self._flag(
                rule, call,
                f"out= destination '{ast.unparse(out_node)}' has extent "
                f"{describe_dim(out.shape[0])} but the operation produces "
                f"{describe_dim(result.shape[0])} — provably mismatched",
            )
        if isinstance(out_node, ast.Name) and out_node.id in self.env:
            old = self.env[out_node.id]
            self._check_narrow_store(old, result, call, out_node.id)
            self.env[out_node.id] = replace(
                old, ival=old.ival.join(result.ival),
                sides=old.sides | result.sides,
            )

    def _cumulative_ival(self, base: AValue) -> Interval:
        """Interval of a cumulative sum under declared length bounds."""
        ival = base.ival
        if ival.lo is None or ival.hi is None:
            return TOP
        dim = base.dim()
        if dim[0] == "const":
            n = dim[1]
        else:
            n = self.bounds.get("max_length", 1 << 20)
        corners = [ival.lo, ival.hi, ival.lo * n, ival.hi * n]
        return Interval(min(corners), max(corners))

    def _eval_builtin(self, call: ast.Call, name: str) -> AValue:
        args = [self._eval(arg) for arg in call.args]
        if name == "len" and args:
            base = args[0]
            if base.shape is not None and len(base.shape) >= 1:
                dim = base.shape[0]
                hi = dim[1] if dim[0] == "const" else None
                return _scalar(Interval(0, hi), sym=dim, sides=base.sides)
            return _scalar(Interval(0, None), sides=base.sides)
        if name == "int" and args:
            return _scalar(args[0].ival, sym=args[0].sym,
                           sides=args[0].sides)
        if name in ("max", "min") and args:
            ival = args[0].ival
            for arg in args[1:]:
                ival = ival.join(arg.ival)
            sides: frozenset = frozenset()
            for arg in args:
                sides = sides | arg.sides
            return _scalar(ival, sides=sides)
        if name == "abs" and args:
            return _scalar(sides=args[0].sides)
        sides = frozenset()
        for arg in args:
            sides = sides | arg.sides
        return AValue(sides=sides)

    def _eval_method(self, call: ast.Call, func: ast.Attribute) -> AValue:
        receiver = self._eval(func.value)
        args = [self._eval(arg) for arg in call.args]
        name = func.attr
        if name == "astype":
            dtype_node = _kwarg(call, "dtype") or (
                call.args[0] if call.args else None
            )
            dtype = _dtype_name(dtype_node) if dtype_node is not None \
                else None
            if dtype is not None:
                self._check_cast(receiver, dtype, call)
                return replace(receiver, dtype=dtype)
            return replace(receiver, dtype=None)
        if name == "sum":
            return _scalar(self._cumulative_ival(receiver),
                           sides=receiver.sides)
        if name == "cumsum":
            return replace(receiver, ival=self._cumulative_ival(receiver),
                           sym=None)
        if name in ("max", "min"):
            return _scalar(receiver.ival, sides=receiver.sides)
        if name in ("tolist", "copy", "ravel"):
            return receiver
        sides = receiver.sides
        for arg in args:
            sides = sides | arg.sides
        return AValue(sides=sides)

    def _check_cast(
        self, value: AValue, dtype: str, node: ast.AST
    ) -> None:
        if dtype not in NARROW_INT_DTYPES:
            return
        rng = dtype_range(dtype)
        if rng is None or not value.ival.proven_exceeds(rng):
            return
        lo = "-inf" if value.ival.lo is None else str(value.ival.lo)
        hi = "+inf" if value.ival.hi is None else str(value.ival.hi)
        rule = "DTYPE102" if value.packed else "DTYPE103"
        self._flag(
            rule, node,
            f"cast to {dtype} of a value with range [{lo}, {hi}] — "
            f"provably exceeds the {dtype} range [{rng.lo}, {rng.hi}]"
            + (" (packed word width too small)" if value.packed
               else " (lossy narrowing)"),
        )

    # -- subscripts ----------------------------------------------------
    def _shape_from_arg(self, node: ast.expr) -> tuple | None:
        if isinstance(node, ast.Tuple):
            return tuple(self._dim_from_expr(elt) for elt in node.elts)
        return (self._dim_from_expr(node),)

    def _dim_from_expr(self, node: ast.expr):
        value = self._eval(node)
        if value.sym is not None:
            return value.sym
        return TOP_DIM

    def _eval_subscript(self, node: ast.Subscript) -> AValue:
        base = self._eval(node.value)
        sl = node.slice
        if (
            isinstance(sl, ast.Call)
            and _np_func(sl) == "ix_"
            and len(sl.args) == 2
        ):
            return self._eval_ix_gather(node, base, sl)
        if isinstance(sl, ast.Slice):
            dims = base.shape
            if dims is not None and len(dims) >= 1:
                first = self._slice_dim(dims[0], sl)
                return replace(base, shape=(first,) + dims[1:], sym=None)
            return replace(base, shape=None, sym=None)
        if isinstance(sl, ast.Tuple):
            return self._eval_tuple_subscript(base, sl)
        idx = self._eval(sl)
        if idx.shape is not None and len(idx.shape) >= 1:
            # Gather: the result takes the index's shape.
            return AValue(shape=idx.shape, dtype=base.dtype,
                          ival=base.ival, sides=base.sides | idx.sides)
        if idx.is_scalar:
            if base.shape is not None and len(base.shape) >= 1:
                rest = base.shape[1:]
                return AValue(shape=rest, dtype=base.dtype, ival=base.ival,
                              sides=base.sides)
            return AValue(shape=None, dtype=base.dtype, ival=base.ival,
                          sides=base.sides)
        return AValue(shape=None, dtype=base.dtype, ival=base.ival,
                      sides=base.sides | idx.sides)

    def _eval_ix_gather(
        self, node: ast.Subscript, base: AValue, ix_call: ast.Call
    ) -> AValue:
        row_idx = self._eval(ix_call.args[0])
        col_idx = self._eval(ix_call.args[1])
        if _is_memo_name(node.value):
            if row_idx.sides == frozenset({"s2"}):
                self._flag(
                    "SHAPE101", node,
                    f"memo gather '{ast.unparse(node)}' uses the S2-derived "
                    f"index '{ast.unparse(ix_call.args[0])}' on the row "
                    "axis — the memo axis contract is M[k1-side, k2-side] "
                    "(transposed gather)",
                )
            elif col_idx.sides == frozenset({"s1"}):
                self._flag(
                    "SHAPE101", node,
                    f"memo gather '{ast.unparse(node)}' uses the S1-derived "
                    f"index '{ast.unparse(ix_call.args[1])}' on the column "
                    "axis — the memo axis contract is M[k1-side, k2-side] "
                    "(transposed gather)",
                )
        return AValue(
            shape=(row_idx.dim(), col_idx.dim()),
            dtype=base.dtype,
            ival=base.ival,
            sides=base.sides | row_idx.sides | col_idx.sides,
        )

    def _eval_tuple_subscript(
        self, base: AValue, sl: ast.Tuple
    ) -> AValue:
        dims: list = []
        base_dims = list(base.shape) if base.shape is not None else None
        unknown = False
        for position, element in enumerate(sl.elts):
            base_dim = (
                base_dims[position]
                if base_dims is not None and position < len(base_dims)
                else TOP_DIM
            )
            if isinstance(element, ast.Slice):
                dims.append(self._slice_dim(base_dim, element))
                continue
            value = self._eval(element)
            if value.is_scalar:
                continue  # scalar index drops the axis
            if value.shape is not None and len(value.shape) == 1:
                dims.append(value.shape[0])
                continue
            unknown = True
        if unknown:
            return AValue(shape=None, dtype=base.dtype, ival=base.ival,
                          sides=base.sides)
        return AValue(shape=tuple(dims), dtype=base.dtype, ival=base.ival,
                      sides=base.sides)

    def _slice_dim(self, dim, sl: ast.Slice):
        if sl.step is not None and not (
            isinstance(sl.step, ast.Constant) and sl.step.value == 1
        ):
            return TOP_DIM
        lower = sl.lower
        upper = sl.upper
        if lower is None and upper is None:
            return dim
        lower_const = (
            lower.value
            if isinstance(lower, ast.Constant)
            and isinstance(lower.value, int)
            else None
        )
        upper_const = (
            upper.value
            if isinstance(upper, ast.Constant)
            and isinstance(upper.value, int)
            else None
        )
        if upper is None and lower_const is not None and lower_const >= 0:
            return dim_offset(dim, -lower_const)
        if lower is None and upper_const is not None and upper_const < 0:
            return dim_offset(dim, upper_const)
        return TOP_DIM


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _is_target(info, targets) -> bool:
    if targets is not None:
        return info.qualname in targets or info.node.name in targets
    norm = info.path.replace("\\", "/")
    if any(part in norm for part in _SUBSTRATE_PATH_PARTS):
        return True
    return any(
        info.node.name.startswith(prefix)
        for prefix in _TARGET_NAME_PREFIXES
    )


def analyze_dataflow(
    modules: dict[str, ast.Module],
    *,
    index=None,
    targets=None,
    bounds: dict[str, int] | None = None,
) -> list[Finding]:
    """Run the numeric dataflow pass over parsed *modules*.

    *targets* restricts analysis to functions whose qualified or bare
    name appears in it (tests); by default the substrate modules and
    conventionally named kernels are analyzed.  *bounds* overrides the
    registry's declared input bounds.
    """
    if index is None:
        from repro.check.callgraph import ProjectIndex

        index = ProjectIndex(modules)
    bounds = dict(bounds) if bounds is not None else _input_bounds()
    findings: list[Finding] = []
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        if not _is_target(info, targets):
            continue
        module = index.modules.get(info.path)
        constants = module.constants if module is not None else {}
        _FunctionInterpreter(
            info, info.path, findings, bounds, constants
        ).run()
    deduped: list[Finding] = []
    seen: set[tuple] = set()
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        key = (finding.rule, finding.path, finding.line, finding.col)
        if key not in seen:
            seen.add(key)
            deduped.append(finding)
    return deduped
