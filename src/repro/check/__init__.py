"""``repro.check`` — SPMD static analysis and runtime sanitizers.

PRNA's correctness hangs on an *implicit* SPMD protocol: every rank must
issue the same per-row ``Allreduce(MAX)`` sequence, and the shared-memory
reduction adds a two-barrier ownership discipline where each rank may only
write its owned columns of the shm-backed memo between barriers.  Nothing
in the algorithm itself checks any of this — a rank-conditional collective
or an out-of-partition write silently deadlocks or corrupts ``M``.

This package verifies the protocol in four complementary layers:

* **static, per-module** (:mod:`repro.check.static`,
  ``python -m repro.check`` or ``repro-rna check``) — an AST linter
  flagging SPMD hazards with rule IDs ``SPMD001``-``SPMD003``,
  ``ARCH001`` and the lexical ``DTYPE101`` (formerly ``SPMD004``), with
  suppression comments, JSON/SARIF output, and a nonzero exit code on
  findings (MPI-Checker-style collective matching);
* **static, whole-program** (:mod:`repro.check.protocol`, ``--protocol``)
  — a rank-symbolic interprocedural interpreter that extracts each
  abstract rank's communication schedule and proves collective agreement
  (``SPMD1xx``), cross-module tag matching (``SPMD2xx``), and executor
  dependency-schedule legality against the recurrence's ``d1``/``d2``
  structure (``SCHED0xx``), with content-hash incremental caching and a
  baseline ratchet;
* **static, numeric** (:mod:`repro.check.dataflow` +
  :mod:`repro.check.costs`, ``--dataflow``) — interval/shape/dtype
  abstract interpretation of the kernels proving dtype overflows under
  the registry's declared input bounds (``DTYPE1xx``), shape and
  memo-axis incompatibilities (``SHAPE1xx``), and auditing every
  registered :class:`~repro.runtime.registry.CostContract` against the
  statically extracted loop-nest degree (``COST0xx``);
* **dynamic** (:mod:`repro.check.sanitizer`) — a
  :class:`~repro.check.sanitizer.SanitizedCommunicator` that stamps every
  collective with a sequence number, op, dtype, shape, and call site and
  cross-validates the stamps at the rendezvous (diagnostics
  ``SAN101``-``SAN104``), plus a memo-table race detector that diffs the
  shm-backed table against a per-rank shadow at every row ``Allreduce``
  (``SAN201``-``SAN203``).

See ``docs/static-analysis.md`` for the rule catalog and the sanitizer
protocol.
"""

from repro.check.findings import RULES, Finding
from repro.check.sanitizer import SanitizedCommunicator, SanitizedMemoTable
from repro.check.static import (
    analyze_paths,
    analyze_project,
    analyze_source,
    run_check,
)

__all__ = [
    "Finding",
    "RULES",
    "SanitizedCommunicator",
    "SanitizedMemoTable",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "run_check",
]
