"""Static-pass driver: walk files, run rules, filter ``# noqa``, report.

Used three ways, all sharing :func:`run_check`:

* ``python -m repro.check [paths] [--protocol] [--sarif out.sarif] ...``
* the ``repro-check`` console script
* the ``repro-rna check`` subcommand

The per-module rules (SPMD001-003, ARCH001, lexical DTYPE101) always
run.  ``--protocol`` adds the interprocedural protocol verifier
(:mod:`repro.check.protocol`: SPMD1xx collective agreement, SPMD2xx
cross-module tag matching, SCHED0xx schedule legality).  ``--dataflow``
adds the numeric dataflow verifier (:mod:`repro.check.dataflow` +
:mod:`repro.check.costs`: DTYPE1xx interval-proven overflows, SHAPE1xx
shape/axis incompatibilities, COST0xx cost-contract audits).
``--cache`` makes re-runs over an unchanged tree
near-instant (content-hash keyed, :mod:`repro.check.cache`), ``--sarif``
writes a SARIF 2.1.0 log for GitHub code scanning, and
``--baseline``/``--update-baseline`` implement a ratchet: grandfathered
findings are suppressed, *new* findings fail, and a baseline entry that
no longer matches anything is itself a finding (BASE001) so the baseline
only ever shrinks.

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import sys

from repro.check.findings import (
    DEPRECATED_RULES,
    RULES,
    RULESET_VERSION,
    Finding,
    is_suppressed,
)
from repro.check.rules import analyze_module

__all__ = [
    "analyze_source",
    "analyze_paths",
    "analyze_project",
    "baseline_fingerprint",
    "run_check",
    "main",
]

#: Longest statement extent (in lines) searched for a trailing ``# noqa``
#: on a continuation line; larger statements fall back to the exact line.
_NOQA_EXTENT_CAP = 8


# ----------------------------------------------------------------------
# noqa filtering (statement-extent aware)
# ----------------------------------------------------------------------
def _statement_extents(tree: ast.Module) -> list[tuple[int, int]]:
    extents = []
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.end_lineno is not None:
            extents.append((node.lineno, node.end_lineno))
    return extents


def _noqa_lines_for(
    line: int, extents: list[tuple[int, int]]
) -> tuple[int, int]:
    """The line range to scan for a suppression covering *line*.

    A multi-line call carries its ``# noqa`` wherever black put the
    closing paren, so the smallest enclosing statement's full extent is
    scanned (capped: an 800-line function body should not let a stray
    noqa suppress everything inside it).
    """
    best: tuple[int, int] | None = None
    for lo, hi in extents:
        if lo <= line <= hi:
            if best is None or (hi - lo) < (best[1] - best[0]):
                best = (lo, hi)
    if best is None or (best[1] - best[0]) >= _NOQA_EXTENT_CAP:
        return (line, line)
    return best


def _filter_noqa(
    findings: list[Finding], lines: list[str], tree: ast.Module
) -> list[Finding]:
    extents = _statement_extents(tree)
    kept = []
    for finding in findings:
        lo, hi = _noqa_lines_for(finding.line, extents)
        suppressed = any(
            is_suppressed(finding.rule, lines[lineno - 1])
            for lineno in range(lo, min(hi, len(lines)) + 1)
            if lineno <= len(lines)
        )
        if not suppressed:
            kept.append(finding)
    return kept


# ----------------------------------------------------------------------
# Single-module analysis (tests, snippets)
# ----------------------------------------------------------------------
def analyze_source(source: str, path: str = "<string>") -> list[Finding]:
    """Run every per-module rule over one source, honouring ``# noqa``.

    Raises :class:`SyntaxError` if *source* does not parse.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return _filter_noqa(analyze_module(tree, path), lines, tree)


def _python_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return files


# ----------------------------------------------------------------------
# Whole-tree analysis (project context, protocol pass, cache)
# ----------------------------------------------------------------------
def analyze_project(
    paths: list[str],
    *,
    protocol: bool = False,
    dataflow: bool = False,
    cache=None,
) -> tuple[list[Finding], int]:
    """All findings under *paths* with full project context.

    Per-module rules run with cross-module constants (SPMD002) and
    call-graph shm factories (SPMD003); *protocol* adds the
    interprocedural SPMD1xx/SPMD2xx/SCHED0xx families; *dataflow* adds
    the numeric DTYPE1xx/SHAPE1xx/COST0xx families.  *cache* is an
    optional :class:`repro.check.cache.CheckCache`.
    """
    files = _python_files(paths)
    sources: dict[str, str] = {}
    shas: dict[str, str] = {}
    for filename in files:
        with open(filename, "rb") as handle:
            data = handle.read()
        shas[filename] = hashlib.sha256(data).hexdigest()
        sources[filename] = data.decode("utf-8")

    # The enabled-rule-set version is part of the cache key: toggling a
    # pass or changing the catalog must never replay stale verdicts.
    flags = (
        f"rules:{RULESET_VERSION}|protocol:{int(protocol)}"
        f"|dataflow:{int(dataflow)}"
    )
    if cache is not None:
        hit = cache.lookup_tree(shas, flags)
        if hit is not None:
            per_file, proto, flow = hit
            findings = per_file + proto + flow
            findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
            return findings, len(files)

    trees: dict[str, ast.Module] = {}
    for filename in files:
        trees[filename] = ast.parse(sources[filename], filename=filename)

    from repro.check.callgraph import ProjectIndex

    index = ProjectIndex(trees)
    project_sig = None
    if cache is not None:
        from repro.check.cache import CheckCache

        project_sig = CheckCache.project_signature(index)

    per_file: dict[str, list[Finding]] = {}
    for filename in files:
        cached = None
        if cache is not None:
            cached = cache.lookup_file(filename, shas[filename], project_sig)
        if cached is not None:
            per_file[filename] = cached
            continue
        module = index.modules[filename]
        raw = analyze_module(
            trees[filename],
            filename,
            extra_constants=index.constant_env(module),
            shm_factories=frozenset(index.shm_factories),
        )
        per_file[filename] = _filter_noqa(
            raw, sources[filename].splitlines(), trees[filename]
        )

    proto_findings: list[Finding] = []
    if protocol:
        from repro.check.protocol import analyze_protocol

        raw_proto = analyze_protocol(trees, index=index)
        for finding in raw_proto:
            if finding.path in sources:
                lines = sources[finding.path].splitlines()
                kept = _filter_noqa([finding], lines, trees[finding.path])
                proto_findings.extend(kept)
            else:
                proto_findings.append(finding)

    flow_findings: list[Finding] = []
    if dataflow:
        from repro.check.costs import analyze_costs
        from repro.check.dataflow import analyze_dataflow

        raw_flow = analyze_dataflow(trees, index=index)
        raw_flow += analyze_costs(index)
        # The lexical dtype rule and the dataflow pass can both prove the
        # same DTYPE101 at the same call site; keep the per-file copy.
        seen = {
            (f.rule, f.path, f.line, f.col)
            for fs in per_file.values()
            for f in fs
        }
        for finding in raw_flow:
            if (finding.rule, finding.path, finding.line,
                    finding.col) in seen:
                continue
            if finding.path in sources:
                lines = sources[finding.path].splitlines()
                kept = _filter_noqa([finding], lines, trees[finding.path])
                flow_findings.extend(kept)
            else:
                flow_findings.append(finding)

    if cache is not None:
        cache.store(
            shas, project_sig, per_file, proto_findings, flags,
            dataflow_findings=flow_findings,
        )

    findings = (
        [f for fs in per_file.values() for f in fs]
        + proto_findings
        + flow_findings
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def analyze_paths(paths: list[str]) -> tuple[list[Finding], int]:
    """All per-module findings under *paths* plus the file count.

    Kept as the simple entry point (no protocol pass, no cache); project
    context is still applied so cross-module tags and helper-returned shm
    handles resolve.
    """
    return analyze_project(paths)


# ----------------------------------------------------------------------
# Baseline / ratchet
# ----------------------------------------------------------------------
def baseline_fingerprint(finding: Finding, source_line: str) -> str:
    """A location-drift-tolerant identity for one finding.

    Hashes the rule, the file's basename, the *content* of the flagged
    line (whitespace-stripped) — so renaming a directory or inserting a
    line above does not churn the baseline — but not the line number.
    """
    basename = os.path.basename(finding.path.replace("\\", "/"))
    key = f"{finding.rule}|{basename}|{source_line.strip()}"
    return hashlib.sha1(key.encode()).hexdigest()


def _fingerprints(findings: list[Finding]) -> dict[str, Finding]:
    """fingerprint -> finding (occurrence-counted for duplicates)."""
    line_cache: dict[str, list[str]] = {}
    result: dict[str, Finding] = {}
    counts: dict[str, int] = {}
    for finding in findings:
        if finding.path not in line_cache:
            try:
                with open(finding.path, encoding="utf-8") as handle:
                    line_cache[finding.path] = handle.read().splitlines()
            except OSError:
                line_cache[finding.path] = []
        lines = line_cache[finding.path]
        text = lines[finding.line - 1] if finding.line <= len(lines) else ""
        base = baseline_fingerprint(finding, text)
        occurrence = counts.get(base, 0)
        counts[base] = occurrence + 1
        result[f"{base}:{occurrence}"] = finding
    return result


def load_baseline(path: str) -> set[str]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return set(data.get("fingerprints", []))


def write_baseline(path: str, findings: list[Finding]) -> int:
    fingerprints = sorted(_fingerprints(findings))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "fingerprints": fingerprints}, handle,
                  indent=2)
        handle.write("\n")
    return len(fingerprints)


def apply_baseline(
    findings: list[Finding], baseline_path: str
) -> list[Finding]:
    """Suppress grandfathered findings; flag stale baseline entries.

    Returns the new findings plus one BASE001 per baseline fingerprint
    that no current finding matches (the ratchet: fixing a grandfathered
    finding *requires* removing its baseline entry).
    """
    grandfathered = load_baseline(baseline_path)
    current = _fingerprints(findings)
    fresh = [
        finding
        for fingerprint, finding in current.items()
        if fingerprint not in grandfathered
    ]
    stale = grandfathered - set(current)
    for fingerprint in sorted(stale):
        fresh.append(
            Finding(
                "BASE001", baseline_path, 1, 0,
                f"baseline entry {fingerprint[:12]}... matches no current "
                "finding — the underlying issue was fixed; remove the "
                "entry (or regenerate with --update-baseline)",
            )
        )
    fresh.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return fresh


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _default_paths() -> list[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    # Fall back to the installed package location.
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def run_check(
    paths: list[str] | None = None,
    *,
    json_output: bool = False,
    stream=None,
    protocol: bool = False,
    dataflow: bool = False,
    sarif_path: str | None = None,
    baseline_path: str | None = None,
    update_baseline: bool = False,
    cache_path: str | None = None,
) -> int:
    """Run the static pass and print a report; returns the exit code."""
    stream = stream if stream is not None else sys.stdout
    paths = paths or _default_paths()
    cache = None
    if cache_path is not None:
        from repro.check.cache import CheckCache

        cache = CheckCache(cache_path)
    try:
        findings, n_files = analyze_project(
            paths, protocol=protocol, dataflow=dataflow, cache=cache
        )
    except FileNotFoundError as exc:
        print(f"repro.check: no such path: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}: {exc}",
              file=sys.stderr)
        return 2
    if update_baseline:
        if baseline_path is None:
            print("repro.check: --update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        count = write_baseline(baseline_path, findings)
        print(
            f"repro.check: baseline written to {baseline_path} "
            f"({count} grandfathered finding(s))",
            file=stream,
        )
        return 0
    if baseline_path is not None:
        try:
            findings = apply_baseline(findings, baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro.check: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
    if sarif_path is not None:
        from repro.check.sarif import to_sarif

        with open(sarif_path, "w", encoding="utf-8") as handle:
            json.dump(to_sarif(findings), handle, indent=2)
            handle.write("\n")
    if json_output:
        payload = {
            "version": 1,
            "checked_files": n_files,
            "protocol": protocol,
            "dataflow": dataflow,
            "findings": [finding.as_dict() for finding in findings],
        }
        print(json.dumps(payload, indent=2), file=stream)
    else:
        for finding in findings:
            print(finding.render(), file=stream)
        passes = [name for name, on in (("protocol", protocol),
                                        ("dataflow", dataflow)) if on]
        mode = f" (+{'+'.join(passes)})" if passes else ""
        summary = (
            f"repro.check: {len(findings)} finding(s) in {n_files} "
            f"file(s){mode}"
            if findings
            else f"repro.check: OK ({n_files} files, 0 findings{mode})"
        )
        print(summary, file=stream)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.check`` / ``repro-check``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="SPMD static analysis for the PRNA stack "
        "(per-module rules SPMD001-003/ARCH001/DTYPE101, interprocedural "
        "protocol rules SPMD1xx/SPMD2xx/SCHED0xx with --protocol, "
        "numeric dataflow rules DTYPE1xx/SHAPE1xx/COST0xx with "
        "--dataflow; see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="machine-readable findings for CI annotation",
    )
    parser.add_argument(
        "--protocol", action="store_true",
        help="run the interprocedural protocol verifier (rank-symbolic "
        "communication schedules, deadlock and schedule-legality checks)",
    )
    parser.add_argument(
        "--dataflow", action="store_true",
        help="run the numeric dataflow verifier (interval/shape/dtype "
        "abstract interpretation of the kernels plus cost-contract "
        "audits against the planner's WorkModel degrees)",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", dest="sarif_path",
        help="write findings as SARIF 2.1.0 (GitHub code scanning)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", dest="baseline_path",
        help="suppress findings recorded in this baseline file; stale "
        "entries become BASE001 findings (ratchet mode)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--cache", metavar="PATH", dest="cache_path",
        help="incremental findings cache keyed by file content hashes "
        "(re-running on an unchanged tree is near-instant)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            tag = " [deprecated]" if rule in DEPRECATED_RULES else ""
            print(f"{rule}{tag}  {summary}")
        return 0
    return run_check(
        args.paths or None,
        json_output=args.json_output,
        protocol=args.protocol,
        dataflow=args.dataflow,
        sarif_path=args.sarif_path,
        baseline_path=args.baseline_path,
        update_baseline=args.update_baseline,
        cache_path=args.cache_path,
    )
