"""Static-pass driver: walk files, run rules, filter ``# noqa``, report.

Used three ways, all sharing :func:`run_check`:

* ``python -m repro.check [paths] [--json]``
* the ``repro-check`` console script
* the ``repro-rna check`` subcommand

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import ast
import json
import os
import sys

from repro.check.findings import RULES, Finding, is_suppressed
from repro.check.rules import analyze_module

__all__ = ["analyze_source", "analyze_paths", "run_check", "main"]


def analyze_source(source: str, path: str = "<string>") -> list[Finding]:
    """Run every rule over one module's source, honouring ``# noqa``.

    Raises :class:`SyntaxError` if *source* does not parse.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings = []
    for finding in analyze_module(tree, path):
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if not is_suppressed(finding.rule, line):
            findings.append(finding)
    return findings


def _python_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git"}
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return files


def analyze_paths(paths: list[str]) -> tuple[list[Finding], int]:
    """All findings under *paths* plus the number of files checked."""
    findings: list[Finding] = []
    files = _python_files(paths)
    for filename in files:
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(analyze_source(source, filename))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def _default_paths() -> list[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    # Fall back to the installed package location.
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def run_check(
    paths: list[str] | None = None,
    *,
    json_output: bool = False,
    stream=None,
) -> int:
    """Run the static pass and print a report; returns the exit code."""
    stream = stream if stream is not None else sys.stdout
    paths = paths or _default_paths()
    try:
        findings, n_files = analyze_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro.check: no such path: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}: {exc}",
              file=sys.stderr)
        return 2
    if json_output:
        payload = {
            "version": 1,
            "checked_files": n_files,
            "findings": [finding.as_dict() for finding in findings],
        }
        print(json.dumps(payload, indent=2), file=stream)
    else:
        for finding in findings:
            print(finding.render(), file=stream)
        summary = (
            f"repro.check: {len(findings)} finding(s) in {n_files} file(s)"
            if findings
            else f"repro.check: OK ({n_files} files, 0 findings)"
        )
        print(summary, file=stream)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.check`` / ``repro-check``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="SPMD static analysis for the PRNA stack "
        "(rules SPMD001-SPMD004; see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="machine-readable findings for CI annotation",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    return run_check(args.paths or None, json_output=args.json_output)
