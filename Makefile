# Developer task runner for the repro library.

PYTHON ?= python3

.PHONY: install test bench bench-quick bench-smoke bench-dataflow calibrate experiments verify trace-demo sanitize-demo plan-demo lint check-protocol check-dataflow examples coverage clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable engine comparison: writes BENCH_slices.json at the repo
# root (batched vs vectorized stage one, SRNA2 sweep, PRNA shm vs pipe).
bench-quick:
	$(PYTHON) benchmarks/bench_quick.py

# Non-gating miniature of bench-quick: small sizes, never fails the build.
bench-smoke:
	-$(PYTHON) benchmarks/bench_quick.py --length 120 --repeat 1 \
		--skip-prna --out BENCH_smoke.json
	@rm -f BENCH_smoke.json

# Row-barrier vs dataflow schedule counters only (non-gating in verify:
# the counters are deterministic, but a non-POSIX host skips it).  The
# gated full version runs inside bench-quick.
bench-dataflow:
	-$(PYTHON) benchmarks/bench_quick.py --only-schedules \
		--out BENCH_dataflow.json
	@rm -f BENCH_dataflow.json

# Measure on-node communication/compute costs over the real process
# backend and write CALIBRATION.json — the spec the planner prefers over
# its built-in defaults when pricing schedules (git-ignored: the record
# is machine-specific by construction).  Invoked via -c rather than -m:
# repro.perf re-exports this module, so runpy would warn about the
# double import.
calibrate:
	PYTHONPATH=src $(PYTHON) -c "from repro.perf.calibrate import main; raise SystemExit(main())"

experiments:
	$(PYTHON) -m repro.experiments all --scale quick --json results.json

# Static analysis: ruff + mypy when installed (pip install -e '.[lint]'),
# plus the in-tree SPMD checker, which has no dependencies and always runs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else echo "lint: ruff not installed, skipping (pip install -e '.[lint]')"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else echo "lint: mypy not installed, skipping (pip install -e '.[lint]')"; fi
	PYTHONPATH=src $(PYTHON) -m repro.check src/repro

# Interprocedural protocol verification: the rank-symbolic schedule
# analysis must prove the shipped tree deadlock-free (exit 0).
check-protocol:
	PYTHONPATH=src $(PYTHON) -m repro.check src/repro --protocol

# Numeric dataflow verification: interval/shape/dtype abstract
# interpretation plus the cost-contract audit must prove the shipped
# tree clean (exit 0), and the cold/warm analyzer timing for both passes
# lands in BENCH_check.json so incremental-cache regressions are visible
# (warm must be <10% of cold).
check-dataflow:
	PYTHONPATH=src $(PYTHON) -m repro.check src/repro --protocol --dataflow
	$(PYTHON) benchmarks/bench_check.py

# Runtime-sanitizer transparency check: sanitized 2-rank PRNA on the
# process backend must be bit-identical to the plain run.
sanitize-demo:
	PYTHONPATH=src $(PYTHON) -m repro.check.demo

# Planner transparency check: prints plan.explain() for the contrived
# worst case (must route to multi-rank PRNA) and a small pair (must stay
# sequential SRNA2).
plan-demo:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.demo

verify: lint check-protocol check-dataflow trace-demo bench-smoke bench-dataflow calibrate sanitize-demo plan-demo
	PYTHONPATH=src $(PYTHON) -m repro.experiments verify

# Tiny traced PRNA run: emits a Chrome trace (one track per rank),
# validates the JSON schema on load, and prints the Figure 8 breakdown.
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli simulate --length 120 \
		--procs 1,2,4 --trace trace-demo.json --trace-ranks 4
	PYTHONPATH=src $(PYTHON) -m repro.cli trace-report trace-demo.json
	@rm -f trace-demo.json
	@echo "trace-demo: trace schema valid"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
