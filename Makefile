# Developer task runner for the repro library.

PYTHON ?= python3

.PHONY: install test bench experiments verify examples coverage clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all --scale quick --json results.json

verify:
	$(PYTHON) -m repro.experiments verify

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
