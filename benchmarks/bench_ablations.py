"""Ablation benchmarks for the design choices DESIGN.md calls out."""

import pytest

from repro.core.instrument import Instrumentation
from repro.core.srna1 import srna1
from repro.core.topdown import topdown_mcos
from repro.mpi.costmodel import CostModel
from repro.parallel.lockfree import lockfree_mcos
from repro.parallel.prna import prna
from repro.parallel.simulator import PRNASimulator
from repro.structure.generators import contrived_worst_case


# ----------------------------------------------------------------------
# Memoization on/off (Section IV-A's cautionary variant)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "no-memo"])
def test_srna1_memoization(benchmark, memoize):
    structure = contrived_worst_case(16)
    inst = Instrumentation()

    def run():
        inst_local = Instrumentation()
        result = srna1(
            structure, structure, memoize=memoize,
            instrumentation=inst_local,
        )
        inst.spawns = inst_local.spawns
        return result

    result = benchmark(run)
    assert result.score == 8
    benchmark.extra_info["spawns"] = inst.spawns


# ----------------------------------------------------------------------
# Baseline comparison at one size: top-down vs SRNA1 vs lock-free
# ----------------------------------------------------------------------
def test_baseline_topdown(benchmark):
    structure = contrived_worst_case(60)
    score = benchmark.pedantic(
        lambda: topdown_mcos(structure, structure), rounds=1, iterations=1
    )
    assert score == 30


def test_baseline_lockfree_two_workers(benchmark):
    structure = contrived_worst_case(60)
    stats = benchmark.pedantic(
        lambda: lockfree_mcos(structure, structure, n_workers=2),
        rounds=1, iterations=1,
    )
    assert stats.score == 30
    benchmark.extra_info["redundancy"] = round(stats.redundancy, 3)


def test_baseline_srna1(benchmark):
    structure = contrived_worst_case(60)
    result = benchmark(lambda: srna1(structure, structure))
    assert result.score == 30


# ----------------------------------------------------------------------
# Partitioners and collective algorithms under the simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("partitioner", ["greedy", "block", "cyclic"])
def test_partitioner_simulated(benchmark, partitioner):
    structure = contrived_worst_case(3200)
    simulator = PRNASimulator(partitioner=partitioner)
    report = benchmark(lambda: simulator.simulate(structure, structure, 64))
    benchmark.extra_info["simulated_speedup"] = round(report.speedup, 2)
    benchmark.extra_info["imbalance"] = round(report.imbalance, 4)


@pytest.mark.parametrize(
    "algorithm", ["recursive_doubling", "ring", "linear"]
)
def test_allreduce_algorithm_simulated(benchmark, algorithm):
    structure = contrived_worst_case(3200)
    simulator = PRNASimulator(allreduce_algorithm=algorithm)
    report = benchmark(lambda: simulator.simulate(structure, structure, 64))
    benchmark.extra_info["simulated_speedup"] = round(report.speedup, 2)
    benchmark.extra_info["comm_seconds"] = round(report.comm_seconds, 3)


# ----------------------------------------------------------------------
# Execution backends (real wall clock — the GIL demonstration)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_prna_backend_wall_clock(benchmark, backend):
    structure = contrived_worst_case(120)
    result = benchmark.pedantic(
        lambda: prna(structure, structure, 2, backend=backend),
        rounds=1, iterations=1,
    )
    assert result.score == 60


# ----------------------------------------------------------------------
# Synchronization granularity under executed virtual time
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sync_mode", ["row", "pair"])
def test_sync_granularity_virtual(benchmark, sync_mode):
    structure = contrived_worst_case(100)
    cost_model = CostModel()

    def run():
        return prna(
            structure, structure, 2,
            backend="thread", sync_mode=sync_mode,
            charge="analytic", cost_model=cost_model,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score == 50
    benchmark.extra_info["virtual_seconds"] = round(result.simulated_time, 4)
