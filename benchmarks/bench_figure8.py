"""Figure 8 benchmark: PRNA speedup curves.

Two layers, mirroring the experiment module:

* the closed-form cluster simulation at the paper's problem sizes (fast —
  it is pure arithmetic), with the resulting speedup curve attached as
  ``extra_info`` and the paper's 22x / 32x end points asserted;
* an *executed* PRNA run on the thread backend with analytic virtual-time
  charging at reduced size, asserting agreement with the simulator.
"""

import pytest

from repro.mpi.costmodel import CostModel
from repro.parallel.prna import prna
from repro.parallel.simulator import PRNASimulator
from repro.perf.model import WorkModel
from repro.structure.generators import contrived_worst_case

RANKS = [1, 2, 4, 8, 16, 32, 64]
PROBLEMS = {"800 arcs": 1600, "1600 arcs": 3200}
PAPER_AT_64 = {"800 arcs": 22.0, "1600 arcs": 32.0}


@pytest.mark.parametrize("label", sorted(PROBLEMS))
def test_simulated_speedup_curve(benchmark, label):
    structure = contrived_worst_case(PROBLEMS[label])
    simulator = PRNASimulator()

    def sweep():
        return {
            report.n_ranks: report.speedup
            for report in simulator.sweep(structure, structure, RANKS)
        }

    curve = benchmark(sweep)
    assert curve[64] == pytest.approx(PAPER_AT_64[label], rel=0.15)
    assert list(curve.values()) == sorted(curve.values())
    benchmark.extra_info["paper_reference"] = "Figure 8"
    benchmark.extra_info["problem"] = label
    benchmark.extra_info["speedup_curve"] = {
        str(p): round(s, 2) for p, s in curve.items()
    }
    benchmark.extra_info["paper_speedup_at_64"] = PAPER_AT_64[label]


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_executed_prna_virtual_time(benchmark, n_ranks):
    structure = contrived_worst_case(200)
    simulator = PRNASimulator()
    predicted = simulator.simulate(structure, structure, n_ranks)

    def run():
        return prna(
            structure, structure, n_ranks,
            backend="thread", charge="analytic",
            work_model=WorkModel.default(),
            cost_model=CostModel(simulator.cluster),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.score == 100
    assert result.simulated_time == pytest.approx(
        predicted.total_seconds, rel=0.05
    )
    benchmark.extra_info["paper_reference"] = "Figure 8 (cross-validation)"
    benchmark.extra_info["n_ranks"] = n_ranks
    benchmark.extra_info["virtual_seconds"] = round(result.simulated_time, 4)
