"""Substrate microbenchmarks: parsing, validation, generation, queries."""

from repro.structure.arcs import Structure
from repro.structure.dotbracket import from_dotbracket, to_dotbracket
from repro.structure.generators import (
    contrived_worst_case,
    rna_like_structure,
)
from repro.structure.stats import work_matrix


def test_structure_validation(benchmark):
    """Construction cost: endpoint + crossing sweeps over 4216 nt."""
    template = rna_like_structure(4216, 721, seed=1)
    arcs = [tuple(a) for a in template.arcs]
    structure = benchmark(lambda: Structure(4216, arcs))
    assert structure.n_arcs == 721


def test_dotbracket_round_trip(benchmark):
    structure = rna_like_structure(4216, 721, seed=2)
    text = to_dotbracket(structure)

    def run():
        return to_dotbracket(from_dotbracket(text))

    assert benchmark(run) == text


def test_generator_rna_like(benchmark):
    structure = benchmark(lambda: rna_like_structure(4216, 721, seed=3))
    assert structure.n_arcs == 721


def test_inside_count_sweep(benchmark):
    structure = contrived_worst_case(3200)

    def run():
        fresh = Structure(structure.length, [tuple(a) for a in structure.arcs])
        return fresh.inside_count

    counts = benchmark(run)
    assert counts[-1] == 1599


def test_work_matrix(benchmark):
    s1 = rna_like_structure(1000, 250, seed=4)
    s2 = rna_like_structure(1000, 250, seed=5)
    matrix = benchmark(lambda: work_matrix(s1, s2))
    assert matrix.shape == (250, 250)
