"""Analyzer wall-time benchmark: cold vs warm-cache verifier runs.

Writes ``BENCH_check.json`` at the repository root (override with
``--out``).  The headline numbers are the **cold** wall time of a full
``repro.check --protocol --dataflow`` pass over ``src/repro`` and the
**warm** wall time of an immediate re-run against the content-hash cache
on the unchanged tree.  The acceptance bar (and the regression this file
makes visible) is ``warm < 0.05 * cold``: the warm path must serve the
whole result — per-module, protocol, and dataflow findings — from the
cache without parsing a single module.

Run directly (``python benchmarks/bench_check.py``) or via
``make check-dataflow``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check.cache import CheckCache  # noqa: E402
from repro.check.static import analyze_project  # noqa: E402

#: Warm-over-cold ratio the incremental cache must stay under.
WARM_RATIO_BAR = 0.05


def _timed_run(paths: list[str], cache: CheckCache | None, *,
               dataflow: bool = True):
    start = time.perf_counter()
    findings, n_files = analyze_project(
        paths, protocol=True, dataflow=dataflow, cache=cache
    )
    elapsed = time.perf_counter() - start
    return elapsed, findings, n_files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_check.json"),
        help="output JSON path (default: BENCH_check.json at repo root)",
    )
    parser.add_argument(
        "--paths", nargs="*", default=[str(REPO_ROOT / "src" / "repro")],
        help="trees to analyze (default: src/repro)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        # Protocol-only cold pass first, so the dataflow pass's marginal
        # cost is visible as cold_seconds - protocol_only_seconds.
        proto_s, _, _ = _timed_run(
            args.paths, CheckCache(os.path.join(tmp, "proto-cache.json")),
            dataflow=False,
        )
        cache = CheckCache(os.path.join(tmp, "check-cache.json"))
        cold_s, findings, n_files = _timed_run(args.paths, cache)
        warm_cache = CheckCache(cache.cache_path)  # re-read from disk
        warm_s, warm_findings, _ = _timed_run(args.paths, warm_cache)

    consistent = [f.as_dict() for f in findings] == [
        f.as_dict() for f in warm_findings
    ]
    interproc_findings = [
        f.as_dict()
        for f in findings
        if f.rule.startswith(
            ("SPMD1", "SPMD2", "SCHED", "BASE", "DTYPE", "SHAPE", "COST")
        )
    ]
    payload = {
        "benchmark": "repro.check --protocol --dataflow analyzer wall time",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "checked_files": n_files,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_over_cold": round(warm_s / cold_s, 4) if cold_s else None,
        "protocol_only_seconds": round(proto_s, 4),
        "dataflow_marginal_seconds": round(max(cold_s - proto_s, 0.0), 4),
        "warm_cache_ok": consistent,
        "findings": len(findings),
        "interprocedural_findings": interproc_findings,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"bench_check: cold {cold_s:.3f}s (protocol-only {proto_s:.3f}s), "
        f"warm {warm_s:.3f}s (ratio {payload['warm_over_cold']}), "
        f"{n_files} files, {len(findings)} finding(s) -> {args.out}"
    )
    if not consistent:
        print("bench_check: WARM CACHE RETURNED DIFFERENT FINDINGS",
              file=sys.stderr)
        return 1
    if cold_s > 0 and warm_s >= WARM_RATIO_BAR * cold_s:
        print(
            f"bench_check: warm run {warm_s:.3f}s is not "
            f"<{WARM_RATIO_BAR:.0%} of cold {cold_s:.3f}s — incremental "
            f"cache regression",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
