"""Analyzer wall-time benchmark: cold vs warm-cache protocol runs.

Writes ``BENCH_check.json`` at the repository root (override with
``--out``).  The headline numbers are the **cold** wall time of a full
``repro.check --protocol`` pass over ``src/repro`` and the **warm** wall
time of an immediate re-run against the content-hash cache on the
unchanged tree.  The acceptance bar (and the regression this file makes
visible) is ``warm < 0.10 * cold``: the warm path must serve the whole
result — per-module and protocol findings — from the cache without
parsing a single module.

Run directly (``python benchmarks/bench_check.py``) or via
``make check-protocol``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check.cache import CheckCache  # noqa: E402
from repro.check.static import analyze_project  # noqa: E402


def _timed_run(paths: list[str], cache: CheckCache | None):
    start = time.perf_counter()
    findings, n_files = analyze_project(paths, protocol=True, cache=cache)
    elapsed = time.perf_counter() - start
    return elapsed, findings, n_files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_check.json"),
        help="output JSON path (default: BENCH_check.json at repo root)",
    )
    parser.add_argument(
        "--paths", nargs="*", default=[str(REPO_ROOT / "src" / "repro")],
        help="trees to analyze (default: src/repro)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        cache = CheckCache(os.path.join(tmp, "check-cache.json"))
        cold_s, findings, n_files = _timed_run(args.paths, cache)
        warm_cache = CheckCache(cache.cache_path)  # re-read from disk
        warm_s, warm_findings, _ = _timed_run(args.paths, warm_cache)

    consistent = [f.as_dict() for f in findings] == [
        f.as_dict() for f in warm_findings
    ]
    protocol_findings = [
        f.as_dict()
        for f in findings
        if f.rule.startswith(("SPMD1", "SPMD2", "SCHED", "BASE"))
    ]
    payload = {
        "benchmark": "repro.check --protocol analyzer wall time",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "checked_files": n_files,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_over_cold": round(warm_s / cold_s, 4) if cold_s else None,
        "warm_cache_ok": consistent,
        "findings": len(findings),
        "protocol_findings": protocol_findings,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"bench_check: cold {cold_s:.3f}s, warm {warm_s:.3f}s "
        f"(ratio {payload['warm_over_cold']}), {n_files} files, "
        f"{len(findings)} finding(s) -> {args.out}"
    )
    if not consistent:
        print("bench_check: WARM CACHE RETURNED DIFFERENT FINDINGS",
              file=sys.stderr)
        return 1
    if cold_s > 0 and warm_s >= 0.10 * cold_s:
        print(
            f"bench_check: warm run {warm_s:.3f}s is not <10% of cold "
            f"{cold_s:.3f}s — incremental cache regression",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
