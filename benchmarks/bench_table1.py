"""Table I benchmark: SRNA1 vs SRNA2 on contrived worst-case data.

Regenerates the paper's Table I rows (execution time by sequence length)
as pytest-benchmark entries; the SRNA2/SRNA1 ratio and the ~16x growth per
length doubling are the reproduction's shape targets.
"""

import pytest

from benchmarks._common import lengths_for
from repro.core.srna1 import srna1
from repro.core.srna2 import srna2
from repro.structure.generators import contrived_worst_case

LENGTHS = lengths_for(
    {
        "quick": [100, 200],
        "default": [100, 200, 400],
        "paper": [100, 200, 400, 800, 1600],
    }
)


@pytest.mark.parametrize("length", LENGTHS)
def test_srna1_worst_case(benchmark, length):
    structure = contrived_worst_case(length)
    result = benchmark.pedantic(
        lambda: srna1(structure, structure), rounds=1, iterations=1
    )
    assert result.score == length // 2
    benchmark.extra_info["paper_reference"] = "Table I, SRNA1"
    benchmark.extra_info["length"] = length


@pytest.mark.parametrize("length", LENGTHS)
def test_srna2_worst_case(benchmark, length):
    structure = contrived_worst_case(length)
    result = benchmark.pedantic(
        lambda: srna2(structure, structure), rounds=1, iterations=1
    )
    assert result.score == length // 2
    benchmark.extra_info["paper_reference"] = "Table I, SRNA2"
    benchmark.extra_info["length"] = length
