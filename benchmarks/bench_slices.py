"""Slice-engine microbenchmarks: the library's innermost kernel."""

import numpy as np
import pytest

from repro.core.memo import DenseMemoTable
from repro.core.slices import (
    tabulate_slice_batched,
    tabulate_slice_python,
    tabulate_slice_vectorized,
    tabulate_slices_batched,
)
from repro.structure.generators import contrived_worst_case, rna_like_structure


@pytest.fixture(scope="module")
def worst_case_200():
    structure = contrived_worst_case(200)
    memo = DenseMemoTable(200, 200)
    # Pre-fill M with plausible values so the gather path is realistic.
    rng = np.random.default_rng(0)
    memo.values[...] = rng.integers(0, 50, size=memo.values.shape)
    return structure, memo


def test_vectorized_parent_slice(benchmark, worst_case_200):
    structure, memo = worst_case_200
    result = benchmark(
        lambda: tabulate_slice_vectorized(
            memo.values, structure, structure, 0, 199, 0, 199
        )
    )
    assert result > 0


def test_python_parent_slice(benchmark, worst_case_200):
    structure, memo = worst_case_200
    result = benchmark.pedantic(
        lambda: tabulate_slice_python(
            memo.values, structure, structure, 0, 199, 0, 199
        ),
        rounds=1,
        iterations=1,
    )
    assert result > 0


def test_batched_parent_slice(benchmark, worst_case_200):
    """Single-slice entry of the batched engine (one segment, no lift)."""
    structure, memo = worst_case_200
    result = benchmark(
        lambda: tabulate_slice_batched(
            memo.values, structure, structure, 0, 199, 0, 199
        )
    )
    assert result > 0


def test_batched_stage_one_row(benchmark):
    """One outer arc's whole batch — what SRNA2 stage one runs per arc."""
    structure = contrived_worst_case(200)
    memo = DenseMemoTable(200, 200)
    rng = np.random.default_rng(0)
    memo.values[...] = rng.integers(0, 50, size=memo.values.shape)
    arcs = np.arange(structure.n_arcs, dtype=np.int64)

    total = benchmark(
        lambda: int(
            tabulate_slices_batched(
                memo.values, structure, structure, 1, 198, arcs
            ).sum()
        )
    )
    assert total > 0


def test_many_small_slices(benchmark):
    """Per-slice overhead: rRNA-like structures are dominated by thousands
    of small slices, not one big one."""
    structure = rna_like_structure(400, 90, seed=17)
    memo = DenseMemoTable(400, 400)

    def run():
        total = 0
        inner = structure.inner_ranges
        for a in range(structure.n_arcs):
            arc = structure.arcs[a]
            r1 = (int(inner[a, 0]), int(inner[a, 1]))
            for b in range(structure.n_arcs):
                other = structure.arcs[b]
                total += tabulate_slice_vectorized(
                    memo.values, structure, structure,
                    arc.left + 1, arc.right - 1,
                    other.left + 1, other.right - 1,
                    ranges=(r1, (int(inner[b, 0]), int(inner[b, 1]))),
                )
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total >= 0
    benchmark.extra_info["slices"] = structure.n_arcs ** 2


def test_many_small_slices_batched(benchmark):
    """The same workload through the batch API — one call per outer arc
    instead of one per arc pair (the production stage-one shape)."""
    structure = rna_like_structure(400, 90, seed=17)
    memo = DenseMemoTable(400, 400)
    arcs = np.arange(structure.n_arcs, dtype=np.int64)

    def run():
        total = 0
        inner = structure.inner_ranges
        for a in range(structure.n_arcs):
            arc = structure.arcs[a]
            r1 = (int(inner[a, 0]), int(inner[a, 1]))
            total += int(
                tabulate_slices_batched(
                    memo.values, structure, structure,
                    arc.left + 1, arc.right - 1, arcs, r1=r1,
                ).sum()
            )
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total >= 0
    benchmark.extra_info["slices"] = structure.n_arcs ** 2
