"""Helpers shared by the benchmark modules."""

import os

__all__ = ["bench_scale", "lengths_for"]


def bench_scale() -> str:
    """``quick`` (default) or ``paper`` via ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return scale if scale in ("quick", "default", "paper") else "quick"


def lengths_for(table: dict[str, list[int]]) -> list[int]:
    return table[bench_scale()]
