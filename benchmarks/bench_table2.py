"""Table II benchmark: SRNA1 vs SRNA2 on the 23S rRNA stand-ins.

At quick scale the structures shrink to 1/4 of the paper's dimensions
(same topology statistics); ``REPRO_BENCH_SCALE=paper`` uses the full
4216 nt / 721 arc and 4381 nt / 1126 arc stand-ins.
"""

import pytest

from benchmarks._common import bench_scale
from repro.core.srna1 import srna1
from repro.core.srna2 import srna2
from repro.structure.datasets import REGISTRY, get_dataset
from repro.structure.generators import rna_like_structure

DATASETS = ["fungus", "malaria"]


def _structure(name: str):
    if bench_scale() == "paper":
        return get_dataset(name)
    info = REGISTRY[name][0]
    return rna_like_structure(
        info.length // 4, info.n_arcs // 4, seed=info.n_arcs
    )


@pytest.mark.parametrize("name", DATASETS)
def test_srna1_rrna(benchmark, name):
    structure = _structure(name)
    result = benchmark.pedantic(
        lambda: srna1(structure, structure), rounds=1, iterations=1
    )
    assert result.score == structure.n_arcs
    benchmark.extra_info["paper_reference"] = "Table II, SRNA1"
    benchmark.extra_info["dataset"] = name


@pytest.mark.parametrize("name", DATASETS)
def test_srna2_rrna(benchmark, name):
    structure = _structure(name)
    result = benchmark.pedantic(
        lambda: srna2(structure, structure), rounds=1, iterations=1
    )
    assert result.score == structure.n_arcs
    benchmark.extra_info["paper_reference"] = "Table II, SRNA2"
    benchmark.extra_info["dataset"] = name
