"""Shared benchmark configuration.

Benchmarks default to *quick* sizes so ``pytest benchmarks/
--benchmark-only`` completes in a few minutes; set
``REPRO_BENCH_SCALE=paper`` to run the paper's sizes (Table I's n = 1600
column takes a long time in Python — see EXPERIMENTS.md).
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
