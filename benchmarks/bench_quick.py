"""Quick, machine-readable benchmark: batched vs per-slice engines.

Writes ``BENCH_slices.json`` at the repository root (override with
``--out``).  The headline number is the SRNA2 **stage-one** speedup of the
batched engine over the per-slice vectorized engine on the contrived worst
case — the measurement behind making ``"batched"`` the production default
(target: >= 3x at n = m >= 400).  A small SRNA2/PRNA sweep rides along so
regressions in either engine or either reduction path show up in one file,
and a row-barrier vs dataflow schedule comparison records the counter-level
cost of each synchronization strategy (sync points, publication batches,
coalesced cells, dependency-wait time) with a >= 2x sync-point gate.

Run directly (``python benchmarks/bench_quick.py``) or via
``make bench-quick``.  Keep it quick: the default settings finish in well
under a minute on one core.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.instrument import Instrumentation  # noqa: E402
from repro.core.srna2 import srna2  # noqa: E402
from repro.structure.generators import (  # noqa: E402
    contrived_worst_case,
    rna_like_structure,
)


def _stage_one_seconds(structure, engine: str, repeat: int) -> tuple[float, int]:
    """Best-of-*repeat* stage-one seconds for one SRNA2 self-comparison."""
    best = float("inf")
    score = -1
    for _ in range(repeat):
        inst = Instrumentation()
        result = srna2(structure, structure, engine=engine, instrumentation=inst)
        best = min(best, inst.stage_times.stage_one)
        score = result.score
    return best, score


def bench_stage_one(length: int, repeat: int) -> dict:
    """The headline: batched vs vectorized stage one, worst-case data."""
    structure = contrived_worst_case(length)
    rows = {}
    scores = set()
    for engine in ("vectorized", "batched"):
        seconds, score = _stage_one_seconds(structure, engine, repeat)
        rows[engine] = seconds
        scores.add(score)
    assert len(scores) == 1, f"engines disagree on the score: {scores}"
    return {
        "case": "stage_one_worst_case",
        "length": length,
        "score": scores.pop(),
        "seconds": rows,
        "speedup_batched_vs_vectorized": rows["vectorized"] / rows["batched"],
    }


def bench_srna2_sweep(repeat: int) -> list[dict]:
    """End-to-end SRNA2 on rRNA-like data, both engines."""
    sweep = []
    for length, n_arcs, seed in ((200, 45, 11), (300, 70, 12)):
        structure = rna_like_structure(length, n_arcs, seed=seed)
        entry = {
            "case": "srna2_rna_like",
            "length": length,
            "n_arcs": structure.n_arcs,
            "seconds": {},
        }
        for engine in ("vectorized", "batched"):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                srna2(structure, structure, engine=engine)
                best = min(best, time.perf_counter() - start)
            entry["seconds"][engine] = best
        entry["speedup_batched_vs_vectorized"] = (
            entry["seconds"]["vectorized"] / entry["seconds"]["batched"]
        )
        sweep.append(entry)
    return sweep


def bench_prna(repeat: int) -> list[dict]:
    """PRNA on the process backend: shared-memory vs pipe reductions."""
    from repro.parallel.prna import prna

    structure = contrived_worst_case(160)
    sweep = []
    for label, shared in (("shm", None), ("pipe", False)):
        best = float("inf")
        stats = None
        for _ in range(repeat):
            start = time.perf_counter()
            result = prna(
                structure, structure, 2, backend="process",
                shared_memory=shared, collect_stats=True,
            )
            best = min(best, time.perf_counter() - start)
            stats = result.comm_stats
        sweep.append(
            {
                "case": "prna_process_2ranks",
                "length": 160,
                "reduction": label,
                "seconds": best,
                "allreduces": stats["allreduces"],
                "allreduce_bytes_pickled": stats["allreduce_bytes"],
                "shm_allreduces": stats["shm_allreduces"],
            }
        )
    return sweep


def bench_schedules(repeat: int) -> list[dict]:
    """Row-barrier vs dataflow stage one: schedule-level counters.

    Wall timings on a contended single-core CI host are noise, so the
    regression signal here is the **deterministic counters**: collective
    synchronization points (allreduces + barriers + bcasts), publication
    batches, coalesced cells/bytes, and time blocked on dependencies.
    The dataflow schedule's entire point is retiring the one-Allreduce-
    per-arc row barrier; the gate in :func:`main` asserts it issues at
    most half the row schedule's sync points.
    """
    from repro.parallel.prna import prna

    structure = contrived_worst_case(160)
    sweep = []
    for mode in ("row", "dataflow"):
        best = float("inf")
        stats = None
        score = None
        for _ in range(repeat):
            start = time.perf_counter()
            result = prna(
                structure, structure, 2, backend="process",
                sync_mode=mode, collect_stats=True,
            )
            best = min(best, time.perf_counter() - start)
            stats = result.comm_stats
            score = result.score
        sweep.append(
            {
                "case": "prna_schedule_2ranks",
                "length": 160,
                "sync_mode": mode,
                "seconds": best,
                "score": score,
                "sync_points": (
                    stats["allreduces"] + stats["barriers"] + stats["bcasts"]
                ),
                "allreduces": stats["allreduces"],
                "publishes": stats["publishes"],
                "awaits": stats["awaits"],
                "coalesced_cells": stats["coalesced_cells"],
                "publish_bytes": stats["publish_bytes"],
                "dependency_wait_ns": stats["dependency_wait_ns"],
            }
        )
    row, dataflow = sweep
    assert row["score"] == dataflow["score"], "schedules disagree on score"
    dataflow["sync_point_reduction_vs_row"] = row["sync_points"] / max(
        dataflow["sync_points"], 1
    )
    return sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_slices.json"),
        help="output JSON path (default: BENCH_slices.json at the repo root)",
    )
    parser.add_argument(
        "--length", type=int, default=400,
        help="contrived worst-case size for the headline (default 400)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="repetitions per measurement; best is kept (default 2)",
    )
    parser.add_argument(
        "--skip-prna", action="store_true",
        help="skip the process-backend sweep (e.g. on non-POSIX hosts)",
    )
    parser.add_argument(
        "--only-schedules", action="store_true",
        help="run only the row-barrier vs dataflow schedule comparison "
        "(the `make bench-dataflow` entry; POSIX only)",
    )
    args = parser.parse_args(argv)

    headline = None
    results: list[dict] = []
    schedules: list[dict] = []
    if not args.only_schedules:
        headline = bench_stage_one(args.length, args.repeat)
        results = [headline]
        results += bench_srna2_sweep(args.repeat)
    if not args.skip_prna and os.name == "posix":
        if not args.only_schedules:
            results += bench_prna(max(args.repeat - 1, 1))
        schedules = bench_schedules(max(args.repeat - 1, 1))
        results += schedules

    report = {
        "schema": "repro.bench_quick/1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    status = 0
    if headline is not None:
        speedup = headline["speedup_batched_vs_vectorized"]
        print(
            f"stage one, worst case n={args.length}: "
            f"vectorized {headline['seconds']['vectorized']:.3f}s, "
            f"batched {headline['seconds']['batched']:.3f}s "
            f"-> {speedup:.1f}x"
        )
        if speedup < 3.0 and args.length >= 400:
            print(
                "WARNING: batched speedup below the 3x target",
                file=sys.stderr,
            )
            status = 1
    print(f"wrote {args.out}")
    if schedules:
        row, dataflow = schedules
        reduction = dataflow["sync_point_reduction_vs_row"]
        print(
            f"schedules, n=160 x 2 ranks: row barrier "
            f"{row['sync_points']} sync points, dataflow "
            f"{dataflow['sync_points']} ({reduction:.0f}x fewer; "
            f"{dataflow['publishes']} coalesced publication batches, "
            f"{dataflow['coalesced_cells']} cells)"
        )
        if reduction < 2.0:
            print(
                "WARNING: dataflow sync-point reduction below the 2x "
                "target",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
