"""Quick, machine-readable benchmark: batched vs per-slice engines.

Writes ``BENCH_slices.json`` at the repository root (override with
``--out``).  The headline number is the SRNA2 **stage-one** speedup of the
batched engine over the per-slice vectorized engine on the contrived worst
case — the measurement behind making ``"batched"`` the production default
(target: >= 3x at n = m >= 400).  A small SRNA2/PRNA sweep rides along so
regressions in either engine or either reduction path show up in one file.

Run directly (``python benchmarks/bench_quick.py``) or via
``make bench-quick``.  Keep it quick: the default settings finish in well
under a minute on one core.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.instrument import Instrumentation  # noqa: E402
from repro.core.srna2 import srna2  # noqa: E402
from repro.structure.generators import (  # noqa: E402
    contrived_worst_case,
    rna_like_structure,
)


def _stage_one_seconds(structure, engine: str, repeat: int) -> tuple[float, int]:
    """Best-of-*repeat* stage-one seconds for one SRNA2 self-comparison."""
    best = float("inf")
    score = -1
    for _ in range(repeat):
        inst = Instrumentation()
        result = srna2(structure, structure, engine=engine, instrumentation=inst)
        best = min(best, inst.stage_times.stage_one)
        score = result.score
    return best, score


def bench_stage_one(length: int, repeat: int) -> dict:
    """The headline: batched vs vectorized stage one, worst-case data."""
    structure = contrived_worst_case(length)
    rows = {}
    scores = set()
    for engine in ("vectorized", "batched"):
        seconds, score = _stage_one_seconds(structure, engine, repeat)
        rows[engine] = seconds
        scores.add(score)
    assert len(scores) == 1, f"engines disagree on the score: {scores}"
    return {
        "case": "stage_one_worst_case",
        "length": length,
        "score": scores.pop(),
        "seconds": rows,
        "speedup_batched_vs_vectorized": rows["vectorized"] / rows["batched"],
    }


def bench_srna2_sweep(repeat: int) -> list[dict]:
    """End-to-end SRNA2 on rRNA-like data, both engines."""
    sweep = []
    for length, n_arcs, seed in ((200, 45, 11), (300, 70, 12)):
        structure = rna_like_structure(length, n_arcs, seed=seed)
        entry = {
            "case": "srna2_rna_like",
            "length": length,
            "n_arcs": structure.n_arcs,
            "seconds": {},
        }
        for engine in ("vectorized", "batched"):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                srna2(structure, structure, engine=engine)
                best = min(best, time.perf_counter() - start)
            entry["seconds"][engine] = best
        entry["speedup_batched_vs_vectorized"] = (
            entry["seconds"]["vectorized"] / entry["seconds"]["batched"]
        )
        sweep.append(entry)
    return sweep


def bench_prna(repeat: int) -> list[dict]:
    """PRNA on the process backend: shared-memory vs pipe reductions."""
    from repro.parallel.prna import prna

    structure = contrived_worst_case(160)
    sweep = []
    for label, shared in (("shm", None), ("pipe", False)):
        best = float("inf")
        stats = None
        for _ in range(repeat):
            start = time.perf_counter()
            result = prna(
                structure, structure, 2, backend="process",
                shared_memory=shared, collect_stats=True,
            )
            best = min(best, time.perf_counter() - start)
            stats = result.comm_stats
        sweep.append(
            {
                "case": "prna_process_2ranks",
                "length": 160,
                "reduction": label,
                "seconds": best,
                "allreduces": stats["allreduces"],
                "allreduce_bytes_pickled": stats["allreduce_bytes"],
                "shm_allreduces": stats["shm_allreduces"],
            }
        )
    return sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_slices.json"),
        help="output JSON path (default: BENCH_slices.json at the repo root)",
    )
    parser.add_argument(
        "--length", type=int, default=400,
        help="contrived worst-case size for the headline (default 400)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="repetitions per measurement; best is kept (default 2)",
    )
    parser.add_argument(
        "--skip-prna", action="store_true",
        help="skip the process-backend sweep (e.g. on non-POSIX hosts)",
    )
    args = parser.parse_args(argv)

    headline = bench_stage_one(args.length, args.repeat)
    results = [headline]
    results += bench_srna2_sweep(args.repeat)
    if not args.skip_prna and os.name == "posix":
        results += bench_prna(max(args.repeat - 1, 1))

    report = {
        "schema": "repro.bench_quick/1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    speedup = headline["speedup_batched_vs_vectorized"]
    print(
        f"stage one, worst case n={args.length}: "
        f"vectorized {headline['seconds']['vectorized']:.3f}s, "
        f"batched {headline['seconds']['batched']:.3f}s "
        f"-> {speedup:.1f}x"
    )
    print(f"wrote {args.out}")
    if speedup < 3.0 and args.length >= 400:
        print("WARNING: batched speedup below the 3x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
