"""Benchmarks for the extensions beyond the paper."""

import numpy as np
import pytest

from repro.batch import search
from repro.core.checkpoint import srna2_checkpointed
from repro.core.srna2 import srna2
from repro.core.weighted import weighted_mcos
from repro.core.weights import unit_weights
from repro.structure.generators import contrived_worst_case, rna_like_structure


def test_weighted_vs_plain(benchmark):
    """The weighted engine's overhead relative to plain SRNA2."""
    structure = contrived_worst_case(120)
    weights = unit_weights(structure, structure)
    plain_score = srna2(structure, structure).score

    result = benchmark(lambda: weighted_mcos(structure, structure, weights))
    assert result.score == plain_score
    benchmark.extra_info["note"] = "float64 memo vs int64; same schedule"


def test_weighted_random_weights(benchmark):
    structure = rna_like_structure(300, 70, seed=3)
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.0, 2.0, size=(70, 70))
    result = benchmark(lambda: weighted_mcos(structure, structure, weights))
    assert result.score > 0


def test_checkpoint_overhead(benchmark, tmp_path):
    """Cost of periodic checkpointing vs plain SRNA2 (every 8 rows)."""
    structure = contrived_worst_case(120)
    path = tmp_path / "bench.ckpt.npz"

    def run():
        if path.exists():
            path.unlink()
        return srna2_checkpointed(structure, structure, path, every=8)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.score == 60


def test_batch_search_serial(benchmark):
    query = rna_like_structure(150, 35, seed=1)
    targets = {
        f"t{k}": rna_like_structure(150, 35, seed=10 + k) for k in range(6)
    }
    hits = benchmark.pedantic(
        lambda: search(query, targets), rounds=1, iterations=1
    )
    assert len(hits) == 6


def test_batch_search_two_workers(benchmark):
    query = rna_like_structure(150, 35, seed=1)
    targets = {
        f"t{k}": rna_like_structure(150, 35, seed=10 + k) for k in range(6)
    }
    hits = benchmark.pedantic(
        lambda: search(query, targets, n_workers=2), rounds=1, iterations=1
    )
    assert len(hits) == 6
