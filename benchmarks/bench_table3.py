"""Table III benchmark: SRNA2 per-stage execution shares.

The benchmark times the full SRNA2 run; the measured per-stage shares are
attached as ``extra_info`` and asserted against the paper's qualitative
claim (stage one >= 99 %).
"""

import pytest

from benchmarks._common import lengths_for
from repro.core.instrument import Instrumentation
from repro.core.srna2 import srna2
from repro.structure.generators import contrived_worst_case

LENGTHS = lengths_for(
    {
        "quick": [100, 200],
        "default": [100, 200, 400],
        "paper": [100, 200, 400, 800],
    }
)


@pytest.mark.parametrize("length", LENGTHS)
def test_srna2_stage_shares(benchmark, length):
    structure = contrived_worst_case(length)
    shares = {}

    def run():
        inst = Instrumentation()
        srna2(structure, structure, instrumentation=inst)
        shares.update(inst.stage_times.percentages())
        return inst

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert shares["stage_one"] > 99.0  # Table III's qualitative claim
    benchmark.extra_info["paper_reference"] = "Table III"
    benchmark.extra_info["length"] = length
    benchmark.extra_info["stage_shares_percent"] = {
        stage: round(value, 4) for stage, value in shares.items()
    }
