#!/usr/bin/env python3
"""Sequential scaling study: Tables I and III at reduced scale.

Times SRNA1 and SRNA2 on contrived worst-case data over a doubling sweep,
prints the paper-style rows next to the paper's published numbers, and
breaks SRNA2 down by stage.  Sizes are small enough to finish in about a
minute; pass ``--full`` to extend to length 800.

Run:  python examples/worstcase_scaling.py [--full]
"""

import sys

from repro.analysis.tables import format_table
from repro.core.instrument import Instrumentation
from repro.core.srna1 import srna1
from repro.core.srna2 import srna2
from repro.experiments.table1 import PAPER_TIMES
from repro.perf.timing import time_call
from repro.structure.generators import contrived_worst_case


def main() -> None:
    lengths = [100, 200, 400]
    if "--full" in sys.argv[1:]:
        lengths.append(800)

    rows = []
    stage_rows = []
    for length in lengths:
        structure = contrived_worst_case(length)
        srna2_time = time_call(lambda: srna2(structure, structure)).best
        srna1_time = time_call(lambda: srna1(structure, structure)).best

        inst = Instrumentation()
        srna2(structure, structure, instrumentation=inst)
        shares = inst.stage_times.percentages()

        rows.append(
            [
                length,
                f"{srna1_time:.3f}",
                f"{srna2_time:.3f}",
                f"{srna1_time / srna2_time:.2f}x",
                f"{PAPER_TIMES['SRNA1'].get(length, float('nan')):.3f}",
                f"{PAPER_TIMES['SRNA2'].get(length, float('nan')):.3f}",
            ]
        )
        stage_rows.append(
            [
                length,
                f"{shares['preprocessing']:.4f}",
                f"{shares['stage_one']:.4f}",
                f"{shares['stage_two']:.4f}",
            ]
        )

    print(
        format_table(
            ["length", "SRNA1 (s)", "SRNA2 (s)", "ratio",
             "paper SRNA1", "paper SRNA2"],
            rows,
            title="Table I (here vs paper), contrived worst-case data",
        )
    )
    print("\nshape check: SRNA2 ~2x faster; each doubling costs ~16x\n")
    print(
        format_table(
            ["length", "preprocessing %", "stage one %", "stage two %"],
            stage_rows,
            title="Table III (here), SRNA2 stage shares",
        )
    )
    print("\nshape check: stage one >= 99% and growing -> parallelize "
          "stage one")


if __name__ == "__main__":
    main()
