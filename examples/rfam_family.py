#!/usr/bin/env python3
"""Rfam-style workflow: from a Stockholm alignment to family analysis.

Real family-level secondary structures ship as Stockholm files with WUSS
consensus annotations (Rfam's format).  This example writes a small
Stockholm family, reads it back, projects the consensus onto each member
(gapped columns lose their pairs), and runs the comparison pipeline across
the family — the end-to-end path a user with real Rfam data would follow.

Run:  python examples/rfam_family.py
"""

import io

from repro.batch import score_matrix
from repro.structure.draw import draw_arcs
from repro.structure.stockholm import read_stockholm

# A miniature tRNA-ish family: one consensus, four members with indels.
FAMILY = """# STOCKHOLM 1.0
#=GF ID  mini-family
#=GF DE  demonstration family for the repro library
member1      GCGGAUUUAGCUC.AGUUGGGAGAGCGCCA
member2      GCGGAUUUAGCUCGA-UUGGGAGAGCGCCA
member3      GCGGA--UAGCUC.AGUUGGGAGAGCGCCA
member4      GCAGAUUUAGCUC.AGUUGGGAGAGCACCA
#=GC SS_cons <<<<<<...<<<<.....>>>>..>>>>>>
//
"""


def main() -> None:
    alignment = read_stockholm(io.StringIO(FAMILY))
    print(f"family of {len(alignment.names)} members, "
          f"alignment width {alignment.width}, "
          f"consensus pairs {alignment.consensus.n_arcs}")
    print(f"consensus: {alignment.consensus_text}")

    projected = {name: alignment.project(name) for name in alignment.names}
    print("\nprojected members (gapped columns lose their pairs):")
    for name, structure in projected.items():
        print(f"  {name}: {structure.length} nt, {structure.n_arcs} pairs")

    print("\nmember1, as projected:")
    print(draw_arcs(projected["member1"]))

    names, matrix = score_matrix(projected)
    print("\nall-against-all MCOS matrix (diagonal = own pair count):")
    header = "          " + " ".join(f"{name[:8]:>8}" for name in names)
    print(header)
    for row_name, row in zip(names, matrix):
        cells = " ".join(f"{int(value):>8}" for value in row)
        print(f"{row_name[:8]:>8}  {cells}")

    # Ungapped members keep the full consensus; indel members lose pairs
    # only where the gaps hit paired columns.
    full = alignment.consensus.n_arcs
    assert projected["member1"].n_arcs == full
    assert projected["member4"].n_arcs == full
    print(f"\nungapped members carry all {full} consensus pairs; "
          "indel members lose only the pairs their gaps touch")


if __name__ == "__main__":
    main()
