#!/usr/bin/env python3
"""Checkpoint/restart: surviving preemption on long comparisons.

Table I's big columns run for minutes to hours; cluster schedulers kill
jobs.  This example simulates a preemption in the middle of stage one,
resumes from the checkpoint, and shows the resumed run producing the
bit-identical result — for the reason documented in docs/algorithms.md §5:
SRNA2's increasing-right-endpoint order makes every stage-one prefix a
complete, valid resume state.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.checkpoint import Checkpoint, srna2_checkpointed
from repro.core.srna2 import srna2
from repro.structure.generators import contrived_worst_case


def main() -> None:
    structure = contrived_worst_case(160)  # 80 nested arcs
    workdir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
    ckpt_path = workdir / "comparison.ckpt.npz"

    print(f"instance: worst case, {structure.n_arcs} arcs "
          f"({structure.n_arcs} outer rows in stage one)")

    # --- first attempt: preempted after 30 rows -------------------------
    start = time.perf_counter()
    try:
        srna2_checkpointed(
            structure, structure, ckpt_path, every=8, interrupt_after=30
        )
    except InterruptedError as exc:
        elapsed = time.perf_counter() - start
        print(f"\npreempted after {elapsed:.2f}s: {exc}")

    saved = Checkpoint.load(ckpt_path)
    print(f"checkpoint on disk: resume at outer arc {saved.next_arc} "
          f"of {structure.n_arcs}, "
          f"{ckpt_path.stat().st_size / 1024:.0f} KiB")

    # --- second attempt: resumes, finishes ------------------------------
    start = time.perf_counter()
    resumed = srna2_checkpointed(structure, structure, ckpt_path, every=8)
    elapsed = time.perf_counter() - start
    print(f"\nresumed run finished in {elapsed:.2f}s, "
          f"score {resumed.score}")
    assert not ckpt_path.exists(), "checkpoint is cleaned up on success"

    # --- equivalence -----------------------------------------------------
    reference = srna2(structure, structure)
    identical = np.array_equal(resumed.memo.values, reference.memo.values)
    print(f"memo table identical to uninterrupted run: {identical}")
    assert identical and resumed.score == reference.score


if __name__ == "__main__":
    main()
