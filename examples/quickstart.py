#!/usr/bin/env python3
"""Quickstart: compare two RNA secondary structures.

Covers the library's core loop in under a minute:

1. build structures from dot-bracket notation (or files);
2. compute the Maximum Common Ordered Substructure (MCOS) with SRNA2;
3. recover and verify the matched arc pairs;
4. peek at the algorithm's internals via instrumentation.

Run:  python examples/quickstart.py
"""

from repro import from_dotbracket, mcos, to_dotbracket
from repro.core.backtrace import verify_matching


def main() -> None:
    # The paper's Section III example: one structure has a group of three
    # nested arcs followed by two, the other two followed by three.
    first = from_dotbracket("((( ))) (( ))".replace(" ", ""))
    second = from_dotbracket("(( )) ((( )))".replace(" ", ""))

    print("structure 1:", to_dotbracket(first))
    print("structure 2:", to_dotbracket(second))

    result = mcos(first, second, with_backtrace=True, instrument=True)
    print(f"\nMCOS score: {result.score} matched arcs "
          "(the paper's worked answer is 4)")

    print("\nmatched arc pairs (S1 <-> S2):")
    assert result.matched_pairs is not None
    for pair in sorted(result.matched_pairs, key=lambda p: p.arc1.left):
        print(f"  {tuple(pair.arc1)} <-> {tuple(pair.arc2)}")

    # The certificate really is a common ordered substructure:
    verify_matching(first, second, result.matched_pairs)
    print("\ncertificate verified: order and nesting preserved")

    # What the algorithm did, in the paper's vocabulary:
    inst = result.instrumentation
    assert inst is not None
    print(f"\nchild slices tabulated: {inst.slices_tabulated}")
    print(f"subproblem cells:       {inst.cells_tabulated}")
    shares = inst.stage_times.percentages()
    print(f"stage shares:           preprocessing {shares['preprocessing']:.1f}% / "
          f"stage one {shares['stage_one']:.1f}% / "
          f"stage two {shares['stage_two']:.1f}%")

    # The matching induces an anchored alignment (what Bafna's original
    # formulation computed):
    from repro.structure.align import align_from_matching

    alignment = align_from_matching(first, second, result.matched_pairs)
    print("\nanchored alignment ('|' marks matched arc endpoints):")
    print(alignment.render())

    # Identical group ordering raises the optimum to five — the paper's
    # second observation about this example.
    print("\nself-comparison of structure 1:",
          mcos(first, first).score, "matched arcs")


if __name__ == "__main__":
    main()
