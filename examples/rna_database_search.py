#!/usr/bin/env python3
"""Database search: rank structures by similarity to a query.

The paper's motivation is comparing real secondary structures (its Table II
uses two 23S ribosomal RNAs).  This example builds a small synthetic
"family database" of rRNA-like structures, perturbs one family member into
a query, and ranks the database by MCOS score — the workload a downstream
user would actually run.

Run:  python examples/rna_database_search.py
"""

import numpy as np

from repro import mcos
from repro.structure.arcs import Structure
from repro.structure.generators import rna_like_structure
from repro.structure.stats import describe


def perturb(structure: Structure, n_deletions: int, seed: int) -> Structure:
    """Delete a few random arcs — a crude model of structural divergence."""
    rng = np.random.default_rng(seed)
    victims = rng.choice(
        structure.n_arcs, size=min(n_deletions, structure.n_arcs),
        replace=False,
    )
    return structure.without_arcs(victims.tolist())


def main() -> None:
    # A database of five structural families.
    database = {
        f"family-{k}": rna_like_structure(600, 140, seed=1000 + k)
        for k in range(5)
    }

    # The query: family-2 with 12 arcs lost to divergence.
    query = perturb(database["family-2"], n_deletions=12, seed=7)
    stats = describe(query)
    print(f"query: {stats.length} nt, {stats.n_arcs} arcs, "
          f"{stats.n_helices} helices, depth {stats.max_depth}\n")

    print(f"{'family':<12} {'arcs':>5} {'score':>6} {'coverage':>9}")
    scores = {}
    for name, target in database.items():
        score = mcos(query, target).score
        scores[name] = score
        coverage = score / query.n_arcs
        print(f"{name:<12} {target.n_arcs:>5} {score:>6} {coverage:>8.1%}")

    best = max(scores, key=scores.get)
    print(f"\nbest hit: {best} "
          f"({scores[best]}/{query.n_arcs} query arcs matched)")
    assert best == "family-2", "the true family must rank first"

    # Every deleted arc costs exactly one match against the original:
    original = database["family-2"]
    assert scores[best] == query.n_arcs
    print("sanity: the query embeds perfectly in its source family "
          f"({scores[best]} == {original.n_arcs} - 12 deleted arcs)")


if __name__ == "__main__":
    main()
