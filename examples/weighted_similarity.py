#!/usr/bin/env python3
"""Weighted comparison: restoring Bafna-style scoring.

The paper's formulation strips the weight functions from Bafna et al.'s
similarity recurrence to count matched arcs.  This example uses the
library's weighted generalization to do what the original would: score
matched arc pairs by base-pair chemistry (Watson-Crick vs wobble) and by
span similarity, and show how the optimal common substructure shifts as
the scoring changes.

It also renders the structures and the matched arcs as ASCII diagrams
(the paper's Figure 1, in text).

Run:  python examples/weighted_similarity.py
"""

import numpy as np

from repro import from_dotbracket, mcos
from repro.core.weighted import weighted_mcos
from repro.core.weights import base_pair_weights, span_weights, unit_weights
from repro.structure.draw import draw_arcs, draw_matching


def main() -> None:
    # Two hairpins with different base-pair chemistry in the stems.
    first = from_dotbracket(
        "((((...))))..((...))",
        sequence="GGCG" + "AAA" + "CGCC" + "AU" + "GU" + "AUA" + "AC",
    )
    second = from_dotbracket(
        "(((....)))..(((..)))",
        sequence="GCG" + "AAUA" + "CGC" + "GC" + "GGU" + "CU" + "GCC",
    )

    print("structure 1:")
    print(draw_arcs(first, show_positions=False))
    print("\nstructure 2:")
    print(draw_arcs(second, show_positions=False))

    # 1. Plain MCOS (the paper's problem): every matched arc counts 1.
    plain = mcos(first, second, with_backtrace=True)
    print(f"\nplain MCOS: {plain.score} matched arcs")
    assert plain.matched_pairs is not None
    print(draw_matching(first, second, plain.matched_pairs))

    # 2. Unit weights through the weighted engine — must agree exactly.
    unit = weighted_mcos(first, second, unit_weights(first, second))
    assert unit.score == plain.score
    print(f"\nweighted engine with unit weights agrees: {unit.score}")

    # 3. Chemistry-aware weights: same-class base pairs score 2, mixed 1.
    chem = weighted_mcos(first, second, base_pair_weights(first, second))
    print(f"chemistry-weighted score: {chem.score}")

    # 4. Span-similarity weights favour arcs of matching width.
    shape = weighted_mcos(first, second, span_weights(first, second))
    print(f"span-weighted score:      {shape.score:.3f}")

    # 5. Steering: forbid matching the two outermost arcs (weight -inf is
    # unnecessary — a large negative value suffices) and watch the optimum
    # route around them.
    steered_weights = unit_weights(first, second)
    outer1 = first.n_arcs - 1  # arcs are in right-endpoint order
    steered_weights[outer1, :] = -100.0
    steered = weighted_mcos(first, second, steered_weights)
    print(f"score with S1's last-closing arc forbidden: {steered.score}")
    assert steered.score <= plain.score

    # Weighted scores are plain floats; numpy interop is free.
    matrix = np.array(
        [
            [weighted_mcos(a, b, unit_weights(a, b)).score
             for b in (first, second)]
            for a in (first, second)
        ]
    )
    print("\npairwise unit-weight score matrix:")
    print(matrix)


if __name__ == "__main__":
    main()
