#!/usr/bin/env python3
"""Parallel speedup: regenerate the paper's Figure 8 on one machine.

Three layers, from concrete to extrapolated:

1. run PRNA for real on the thread and process backends (small world
   sizes) and confirm bit-identical results with sequential SRNA2;
2. run PRNA under *virtual time* — analytic work charging plus a modelled
   cluster network — and compare with the closed-form simulator;
3. sweep the simulator to 64 processors at the paper's problem sizes and
   print the Figure 8 curves (expected end points: ~22x for 800 nested
   arcs, ~32x for 1600 nested arcs).

Run:  python examples/parallel_speedup.py
"""

import numpy as np

from repro.analysis.tables import format_ascii_chart, format_speedup_series
from repro.core.srna2 import srna2
from repro.mpi.costmodel import CostModel
from repro.parallel.prna import prna
from repro.parallel.simulator import PRNASimulator
from repro.perf.model import WorkModel
from repro.structure.generators import contrived_worst_case


def layer_one_real_execution() -> None:
    print("== layer 1: real execution (correctness) ==")
    structure = contrived_worst_case(120)
    reference = srna2(structure, structure)
    for backend in ("thread", "process"):
        result = prna(structure, structure, 2, backend=backend, validate=True)
        identical = np.array_equal(result.memo.values, reference.memo.values)
        print(f"  {backend:>7} backend, 2 ranks: score {result.score} "
              f"(sequential {reference.score}), tables identical: {identical}")
    print()


def layer_two_virtual_time() -> None:
    print("== layer 2: executed virtual time vs closed-form simulation ==")
    structure = contrived_worst_case(200)
    simulator = PRNASimulator()
    for ranks in (1, 2, 4):
        executed = prna(
            structure, structure, ranks,
            backend="thread", charge="analytic",
            work_model=WorkModel.default(),
            cost_model=CostModel(simulator.cluster),
        ).simulated_time
        predicted = simulator.simulate(structure, structure, ranks)
        print(f"  P={ranks}: executed {executed:8.4f}s  "
              f"simulated {predicted.total_seconds:8.4f}s")
    print()


def layer_three_figure8() -> None:
    print("== layer 3: Figure 8 at the paper's scale (simulated cluster) ==")
    simulator = PRNASimulator()
    ranks = [1, 2, 4, 8, 16, 32, 64]
    curves = {}
    for label, length in (("800 arcs", 1600), ("1600 arcs", 3200)):
        structure = contrived_worst_case(length)
        curves[label] = {
            report.n_ranks: report.speedup
            for report in simulator.sweep(structure, structure, ranks)
        }
    print(format_speedup_series(curves))
    print()
    print(format_ascii_chart(curves, width=48))
    print()
    print("paper end points at P=64: 22x (800 arcs), 32x (1600 arcs)")


def main() -> None:
    layer_one_real_execution()
    layer_two_virtual_time()
    layer_three_figure8()


if __name__ == "__main__":
    main()
