#!/usr/bin/env python3
"""Dependency structure: the paper's Figures 3-6 as data.

Reconstructs, for a small instance, the objects the paper draws:

* the subproblem dependency graph a top-down traversal unfolds (Figure 3);
* the slice-spawning graph (Figure 4's dashed arrows);
* the memoization table M after SRNA2 (Figure 5);
* the row-level memo dependency matrix whose strict lower-triangularity is
  SRNA2's ordering guarantee (Figure 6).

Requires networkx (installed with ``repro[analysis]``).

Run:  python examples/dependency_graph.py
"""

import numpy as np

from repro.analysis.depgraph import (
    dependency_graph,
    memo_dependency_matrix,
    slice_graph,
)
from repro.core.srna2 import srna2
from repro.structure.dotbracket import from_dotbracket, to_dotbracket
from repro.structure.generators import contrived_worst_case


def figure3_dependency_graph() -> None:
    # The paper's Figure 3 aligns a 5-position sequence with one arc
    # against itself.
    structure = from_dotbracket("(..).")
    graph = dependency_graph(structure, structure)
    print(f"== Figure 3: dependency graph for {to_dotbracket(structure)!r} "
          "self-comparison ==")
    print(f"  subproblems visited (exact tabulation): {len(graph)}")
    by_case: dict[str, int] = {}
    for _, _, data in graph.edges(data=True):
        by_case[data["case"]] = by_case.get(data["case"], 0) + 1
    print(f"  dependency edges by case: {dict(sorted(by_case.items()))}")
    matched = [edge for edge in graph.edges(data=True) if edge[2]["case"] == "d2"]
    print(f"  matched-arc (d2) edges: {len(matched)} — the dashed edge of "
          "the figure")
    print()


def figure4_slice_graph() -> None:
    structure = contrived_worst_case(10)
    graph = slice_graph(structure, structure)
    print("== Figure 4: slice spawning for 5 nested arcs (self) ==")
    print(f"  slices: {len(graph)} (1 parent + "
          f"{structure.n_arcs}^2 children)")
    depth_one = list(graph.successors((0, 0)))
    print(f"  children spawned directly by the parent: {len(depth_one)}")
    print()


def figure5_memo_table() -> None:
    structure = contrived_worst_case(12)
    run = srna2(structure, structure)
    print("== Figure 5: memoization table M for 6 nested arcs (self) ==")
    print("  (row/col = slice origin pair; value = arcs matched under it)")
    table = run.memo.values
    occupied = np.argwhere(table > 0)
    lo = occupied.min() if occupied.size else 0
    hi = occupied.max() + 1 if occupied.size else 1
    for row in table[lo:hi, lo:hi]:
        print("   " + " ".join(f"{int(v):2d}" for v in row))
    print()


def figure6_memo_dependencies() -> None:
    structure = contrived_worst_case(12)
    matrix = memo_dependency_matrix(structure, structure)
    print("== Figure 6: memo row dependencies (arcs in right-endpoint "
          "order) ==")
    for row in matrix:
        print("   " + " ".join("x" if v else "." for v in row))
    strictly_lower = bool((np.triu(matrix) == 0).all())
    print(f"  strictly lower-triangular: {strictly_lower} "
          "(SRNA2's stage-one ordering is sound)")


def main() -> None:
    figure3_dependency_graph()
    figure4_slice_graph()
    figure5_memo_table()
    figure6_memo_dependencies()


if __name__ == "__main__":
    main()
