#!/usr/bin/env python3
"""Load balancing: the paper's Figure 7 and Section V-A in action.

Shows the per-column work estimates PRNA's preprocessing computes, why
their relative sizes are row-invariant (an outer product), and how the
three partitioners compare — Graham's greedy algorithm (the paper's
choice) against block and cyclic — both in load imbalance and in the
simulated speedup it buys.

Run:  python examples/load_balance.py
"""

from repro.analysis.tables import format_table
from repro.parallel.simulator import PRNASimulator
from repro.scheduling.partition import PARTITIONERS
from repro.scheduling.workload import column_weights
from repro.structure.generators import contrived_worst_case, rna_like_structure
from repro.structure.stats import work_matrix


def figure7_work_matrix() -> None:
    s1 = rna_like_structure(60, 12, seed=3)
    s2 = rna_like_structure(60, 12, seed=4)
    matrix = work_matrix(s1, s2)
    print("== Figure 7: child-slice work matrix (rows = S1 arcs, "
          "cols = S2 arcs) ==")
    for row in matrix:
        print("   " + " ".join(f"{int(v):3d}" for v in row))
    print("\n  every row is a scalar multiple of the same column profile,")
    print("  so one static column partition is optimal for all rows\n")


def partitioner_comparison() -> None:
    structure = contrived_worst_case(3200)  # 1600 nested arcs (Figure 8)
    weights = column_weights(structure, structure)
    simulator_rows = []
    for name in ("greedy", "block", "cyclic"):
        partition = PARTITIONERS[name](weights, 64)
        report = PRNASimulator(partitioner=name).simulate(
            structure, structure, 64
        )
        simulator_rows.append(
            [
                name,
                f"{partition.imbalance():.4f}",
                f"{report.speedup:.2f}x",
                f"{report.efficiency:.1%}",
            ]
        )
    print(
        format_table(
            ["partitioner", "load imbalance", "simulated speedup",
             "efficiency"],
            simulator_rows,
            title="== Section V-A: column partitioners at P=64, "
            "1600 nested arcs ==",
        )
    )
    print("\n  the paper's greedy (Graham) choice; block suffers because the")
    print("  worst case's column weights grow monotonically — the last block")
    print("  gets all the heavy columns")


def utilization_traces() -> None:
    structure = contrived_worst_case(1600)
    print("\n== per-rank utilization (simulated, P=8) ==")
    for name in ("greedy", "block"):
        trace = PRNASimulator(partitioner=name).trace(structure, structure, 8)
        print(f"\n{name} partition:")
        print(trace.render(width=32))
    print("\n  '#' compute, '.' waiting at the row sync, '~' Allreduce —")
    print("  block starves the low ranks because worst-case column weights")
    print("  increase monotonically")


def main() -> None:
    figure7_work_matrix()
    partitioner_comparison()
    utilization_traces()


if __name__ == "__main__":
    main()
